package msg

import (
	"errors"
	"math/rand"
	"os"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func loadTestRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	if err := reg.LoadFS(os.DirFS("../../msgs"), "idl"); err != nil {
		t.Fatalf("LoadFS: %v", err)
	}
	if err := reg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return reg
}

func TestParseImage(t *testing.T) {
	reg := loadTestRegistry(t)
	s, err := reg.Lookup("sensor_msgs/Image")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		name string
		typ  string
	}{
		{"header", "std_msgs/Header"},
		{"height", "uint32"},
		{"width", "uint32"},
		{"encoding", "string"},
		{"is_bigendian", "uint8"},
		{"step", "uint32"},
		{"data", "uint8[]"},
	}
	if len(s.Fields) != len(want) {
		t.Fatalf("fields = %d, want %d", len(s.Fields), len(want))
	}
	for i, w := range want {
		f := s.Fields[i]
		if f.Name != w.name || f.Type.String() != w.typ {
			t.Errorf("field %d = %s %s, want %s %s", i, f.Type, f.Name, w.typ, w.name)
		}
	}
}

func TestParseConstants(t *testing.T) {
	reg := loadTestRegistry(t)
	s, err := reg.Lookup("sensor_msgs/PointField")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Consts) != 8 {
		t.Fatalf("consts = %d, want 8", len(s.Consts))
	}
	if s.Consts[0].Name != "INT8" || s.Consts[0].Value != "1" {
		t.Errorf("first const = %+v", s.Consts[0])
	}
	if s.Consts[7].Name != "FLOAT64" || s.Consts[7].Value != "8" {
		t.Errorf("last const = %+v", s.Consts[7])
	}
}

func TestParseStringConstantKeepsHash(t *testing.T) {
	s, err := Parse("test", "M", "string GREETING=hello # not a comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Consts[0].Value; got != "hello # not a comment" {
		t.Errorf("value = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"missing name", "uint32\n", "missing field name"},
		{"bad type", "not-a-type x\n", "invalid type"},
		{"bad array", "uint8[-1] x\n", "invalid array length"},
		{"bad ident", "uint32 9lives\n", "invalid field name"},
		{"dup field", "uint32 a\nuint32 a\n", "duplicate field"},
		{"array const", "uint8[] C=1\n", "constants must have scalar"},
		{"bad int const", "int32 C=zap\n", "invalid integer constant"},
		{"bad bool const", "bool C=maybe\n", "invalid bool constant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("p", "M", tc.text)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", err, tc.want)
			}
			var pe *ParseError
			if err != nil && !errors.As(err, &pe) {
				t.Errorf("err is not a *ParseError: %T", err)
			}
		})
	}
}

func TestBareHeaderResolvesToStdMsgs(t *testing.T) {
	s, err := Parse("sensor_msgs", "X", "Header header\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.Fields[0].Type.Msg != "std_msgs/Header" {
		t.Errorf("type = %q", s.Fields[0].Type.Msg)
	}
}

func TestBareTypeResolvesWithinPackage(t *testing.T) {
	s, err := Parse("geometry_msgs", "Pose", "Point position\nQuaternion orientation\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.Fields[0].Type.Msg != "geometry_msgs/Point" {
		t.Errorf("type = %q", s.Fields[0].Type.Msg)
	}
}

func TestParseFormatFixpoint(t *testing.T) {
	reg := loadTestRegistry(t)
	for _, name := range reg.Names() {
		s, _ := reg.Lookup(name)
		text := s.Format()
		s2, err := Parse(s.Package, s.Name, text)
		if err != nil {
			t.Fatalf("reparse %s: %v", name, err)
		}
		if s2.Format() != text {
			t.Errorf("%s: Format∘Parse is not a fixpoint:\n%q\nvs\n%q", name, text, s2.Format())
		}
	}
}

func TestMD5StableAndDistinct(t *testing.T) {
	reg := loadTestRegistry(t)
	seen := make(map[string]string)
	for _, name := range reg.Names() {
		sum, err := reg.MD5(name)
		if err != nil {
			t.Fatalf("MD5(%s): %v", name, err)
		}
		if len(sum) != 32 {
			t.Errorf("MD5(%s) = %q, want 32 hex chars", name, sum)
		}
		// Identical definitions legitimately share an MD5 (in real ROS,
		// geometry_msgs/Point and Vector3 do); only differing bodies may
		// not collide.
		if prev, dup := seen[sum]; dup {
			ps, _ := reg.Lookup(prev)
			cs, _ := reg.Lookup(name)
			if ps.Format() != cs.Format() {
				t.Errorf("MD5 collision between differing types %s and %s", prev, name)
			}
		}
		seen[sum] = name
		again, _ := reg.MD5(name)
		if again != sum {
			t.Errorf("MD5(%s) unstable", name)
		}
	}
}

func TestMD5ChangesWithDefinition(t *testing.T) {
	reg := NewRegistry()
	reg.ParseAndRegister("t", "A", "uint32 x\n")
	sum1, _ := reg.MD5("t/A")
	reg.ParseAndRegister("t", "A", "uint32 y\n")
	sum2, _ := reg.MD5("t/A")
	if sum1 == sum2 {
		t.Error("MD5 did not change when field renamed")
	}
}

func TestMD5PropagatesThroughEmbedding(t *testing.T) {
	reg := NewRegistry()
	reg.ParseAndRegister("t", "Inner", "uint32 x\n")
	reg.ParseAndRegister("t", "Outer", "Inner i\n")
	before, _ := reg.MD5("t/Outer")
	reg.ParseAndRegister("t", "Inner", "uint64 x\n")
	after, _ := reg.MD5("t/Outer")
	if before == after {
		t.Error("outer MD5 did not change when inner definition changed")
	}
}

func TestValidateDetectsMissingType(t *testing.T) {
	reg := NewRegistry()
	reg.ParseAndRegister("t", "Outer", "Missing m\n")
	if err := reg.Validate(); err == nil {
		t.Error("Validate accepted unresolved reference")
	}
}

func TestValidateDetectsRecursion(t *testing.T) {
	reg := NewRegistry()
	reg.ParseAndRegister("t", "A", "B b\n")
	reg.ParseAndRegister("t", "B", "A a\n")
	if err := reg.Validate(); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("err = %v, want recursion error", err)
	}
}

func TestFixedWireSize(t *testing.T) {
	reg := loadTestRegistry(t)
	cases := []struct {
		typ   string
		size  int
		fixed bool
	}{
		{"geometry_msgs/Point", 24, true},
		{"geometry_msgs/Quaternion", 32, true},
		{"geometry_msgs/Pose", 56, true},
		{"geometry_msgs/PoseWithCovariance", 56 + 36*8, true},
		{"std_msgs/Header", 0, false},   // embeds a string
		{"sensor_msgs/Image", 0, false}, // dynamic array
		{"stereo_msgs/DisparityImage", 0, false},
	}
	for _, tc := range cases {
		n, fixed, err := reg.FixedWireSize(TypeSpec{Msg: tc.typ})
		if err != nil {
			t.Fatalf("FixedWireSize(%s): %v", tc.typ, err)
		}
		if fixed != tc.fixed || (fixed && n != tc.size) {
			t.Errorf("FixedWireSize(%s) = %d,%v want %d,%v", tc.typ, n, fixed, tc.size, tc.fixed)
		}
	}
}

func TestDynamicZeroValues(t *testing.T) {
	reg := loadTestRegistry(t)
	spec, _ := reg.Lookup("sensor_msgs/Image")
	d, err := NewDynamic(spec, reg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := d.Get("header")
	if err != nil {
		t.Fatal(err)
	}
	hd, ok := h.(*Dynamic)
	if !ok {
		t.Fatalf("header is %T", h)
	}
	if fid, _ := hd.Get("frame_id"); fid != "" {
		t.Errorf("frame_id = %v", fid)
	}
	if data, _ := d.Get("data"); len(data.([]uint8)) != 0 {
		t.Errorf("data not empty")
	}
	if _, err := d.Get("nope"); err == nil {
		t.Error("Get of unknown field succeeded")
	}
	if err := d.Set("nope", 1); err == nil {
		t.Error("Set of unknown field succeeded")
	}
}

func TestDynamicFixedArrayPresized(t *testing.T) {
	reg := loadTestRegistry(t)
	spec, _ := reg.Lookup("sensor_msgs/CameraInfo")
	d, err := NewDynamic(spec, reg)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := d.Get("K")
	if len(k.([]float64)) != 9 {
		t.Errorf("K len = %d, want 9", len(k.([]float64)))
	}
}

func TestRandomDynamicEqualSelf(t *testing.T) {
	reg := loadTestRegistry(t)
	rng := rand.New(rand.NewSource(7))
	for _, name := range reg.Names() {
		spec, _ := reg.Lookup(name)
		d, err := RandomDynamic(spec, reg, rng, 6)
		if err != nil {
			t.Fatalf("RandomDynamic(%s): %v", name, err)
		}
		if !Equal(d, d) {
			t.Errorf("%s: message not Equal to itself", name)
		}
		z, _ := NewDynamic(spec, reg)
		d2, _ := RandomDynamic(spec, reg, rng, 6)
		_ = z
		_ = d2
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	reg := loadTestRegistry(t)
	spec, _ := reg.Lookup("sensor_msgs/Image")
	a, _ := NewDynamic(spec, reg)
	b, _ := NewDynamic(spec, reg)
	if !Equal(a, b) {
		t.Fatal("zero messages not equal")
	}
	b.Set("height", uint32(7))
	if Equal(a, b) {
		t.Error("Equal missed scalar difference")
	}
	b.Set("height", uint32(0))
	b.Set("data", []uint8{1})
	if Equal(a, b) {
		t.Error("Equal missed slice difference")
	}
}

func TestTimeConversions(t *testing.T) {
	now := time.Unix(1700000000, 123456789).UTC()
	rt := NewTime(now)
	if got := rt.ToTime(); !got.Equal(now) {
		t.Errorf("round trip = %v, want %v", got, now)
	}
	if rt.IsZero() {
		t.Error("nonzero time reports zero")
	}
	later := rt.Add(1500 * time.Millisecond)
	if !rt.Before(later) {
		t.Error("Before failed")
	}
	if d := later.Sub(rt); d != 1500*time.Millisecond {
		t.Errorf("Sub = %v", d)
	}

	rd := NewDuration(-2500 * time.Millisecond)
	if got := rd.ToDuration(); got != -2500*time.Millisecond {
		t.Errorf("duration round trip = %v", got)
	}
}

func TestTimeOrderingProperty(t *testing.T) {
	f := func(s1, n1, s2, n2 uint32) bool {
		a := Time{Sec: s1, Nsec: n1 % 1e9}
		b := Time{Sec: s2, Nsec: n2 % 1e9}
		// Before must agree with Sub's sign.
		if a.Before(b) {
			return a.Sub(b) < 0
		}
		return a.Sub(b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
