package msg

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse throws arbitrary text at the .msg parser. Malformed IDL
// arrives from user-authored files and from definitions embedded in
// recorded bags, so the parser must reject garbage with an error —
// never a panic — and any accepted spec must be internally consistent
// enough for the MD5 pipeline to run on it.
func FuzzParse(f *testing.F) {
	// Seeds mirror msgs/idl vectors and the malformed cases the unit
	// tests pin.
	f.Add("uint32 seq\ntime stamp\nstring frame_id\n")
	f.Add("float32 r\nfloat32 g\nfloat32 b\nfloat32 a\n")
	f.Add("string data\n")
	f.Add("string GREETING=hello # not a comment\n")
	f.Add("Header header\n")
	f.Add("Point position\nQuaternion orientation\n")
	f.Add("uint8[] data\nuint8[16] fixed\n")
	f.Add("uint32\n")
	f.Add("not-a-type x\n")
	f.Add("uint8[-1] x\n")
	f.Add("uint32 9lives\n")
	f.Add("uint32 a\nuint32 a\n")
	f.Add("uint8[] C=1\n")
	f.Add("int32 C=zap\n")
	f.Add("bool C=maybe\n")
	f.Add("geometry_msgs/Point p\n")
	f.Add("# only a comment\n\n\n")
	f.Add("int64 a int64 b")
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := Parse("fuzz", "M", text)
		if err != nil {
			return
		}
		// An accepted spec must hold up downstream: field names unique
		// and well-formed text round-tripping through the canonical
		// form used for MD5 computation.
		seen := make(map[string]struct{})
		for _, fld := range spec.Fields {
			if fld.Name == "" {
				t.Fatalf("accepted spec has unnamed field: %q", text)
			}
			if _, dup := seen[fld.Name]; dup {
				t.Fatalf("accepted spec has duplicate field %q: %q", fld.Name, text)
			}
			seen[fld.Name] = struct{}{}
		}
	})
}

// FuzzParseSrv covers the .srv splitter on top of the same parser: the
// "---" separator handling must never panic, and both halves must obey
// the .msg contract.
func FuzzParseSrv(f *testing.F) {
	f.Add("int64 a\nint64 b\n---\nint64 sum\n")
	f.Add("---\n")
	f.Add("")
	f.Add("bool data\n---\nbool success\nstring message\n")
	f.Add("---\n---\n")
	f.Add("int64 a\n--- trailing\nint64 sum\n")
	f.Add("string s # c\n---")
	f.Fuzz(func(t *testing.T, text string) {
		srv, err := ParseSrv("fuzz", "S", text)
		if err != nil {
			return
		}
		if srv.Request == nil || srv.Reply == nil {
			t.Fatalf("accepted service with nil half: %q", text)
		}
		if !utf8.ValidString(srv.Request.Name) || !strings.HasSuffix(srv.Request.Name, "Request") {
			t.Fatalf("request spec name %q not derived from service name", srv.Request.Name)
		}
	})
}
