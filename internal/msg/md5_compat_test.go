package msg

import (
	"os"
	"testing"
)

// TestMD5MatchesRealROS pins our genmsg-compatible checksum algorithm
// against the MD5 sums published by real ROS1 (from the rosmsg tool /
// ROS message documentation). Matching them means a publisher built
// with this repository would interoperate with a genuine roscpp peer's
// type checking.
func TestMD5MatchesRealROS(t *testing.T) {
	reg := NewRegistry()
	if err := reg.LoadFS(os.DirFS("../../msgs"), "idl"); err != nil {
		t.Fatal(err)
	}
	known := map[string]string{
		"std_msgs/Header":          "2176decaecbce78abc3b96ef049fabed",
		"std_msgs/String":          "992ce8a1687cec8c8bd883ec73ca41d1",
		"geometry_msgs/Point":      "4a842b65f413084dc2b10fb484ea7f17",
		"geometry_msgs/Vector3":    "4a842b65f413084dc2b10fb484ea7f17",
		"geometry_msgs/Quaternion": "a779879fadf0160734f906b8c19c7004",
		"geometry_msgs/Pose":       "e45d45a5a1ce597b249e23fb30fc871f",
		"sensor_msgs/Image":        "060021388200f6f0f447d0fcd9c64743",
		"sensor_msgs/CameraInfo":   "c9a58c1b0b154e0e6da7578cb991d214",
	}
	for name, want := range known {
		got, err := reg.MD5(name)
		if err != nil {
			t.Fatalf("MD5(%s): %v", name, err)
		}
		if got != want {
			t.Errorf("MD5(%s) = %s, want real-ROS %s", name, got, want)
		}
	}
}
