package msg

import (
	"fmt"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync"
)

// Registry resolves message type names to parsed specs. It plays the role
// of the ROS package index that genmsg consults when a message embeds
// another message.
type Registry struct {
	mu    sync.RWMutex
	specs map[string]*Spec
	md5s  map[string]string
	srvs  map[string]*ServiceSpec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		specs: make(map[string]*Spec),
		md5s:  make(map[string]string),
	}
}

// Register adds a spec. Re-registering the same full name replaces it and
// invalidates cached checksums.
func (r *Registry) Register(s *Spec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.specs[s.FullName()] = s
	r.md5s = make(map[string]string) // checksums may transitively change
}

// ParseAndRegister parses a definition and adds it.
func (r *Registry) ParseAndRegister(pkg, name, text string) (*Spec, error) {
	s, err := Parse(pkg, name, text)
	if err != nil {
		return nil, err
	}
	r.Register(s)
	return s, nil
}

// Lookup returns the spec for a "pkg/Name" type.
func (r *Registry) Lookup(fullName string) (*Spec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.specs[fullName]
	if !ok {
		return nil, fmt.Errorf("message type %q not registered", fullName)
	}
	return s, nil
}

// Names returns all registered full names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.specs))
	for n := range r.specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validate checks that every message type referenced by any registered
// spec is itself registered, and that there are no recursive embeddings.
func (r *Registry) Validate() error {
	for _, name := range r.Names() {
		if err := r.checkResolvable(name, nil); err != nil {
			return err
		}
	}
	return nil
}

func (r *Registry) checkResolvable(fullName string, chain []string) error {
	for _, c := range chain {
		if c == fullName {
			return fmt.Errorf("recursive message embedding: %s", strings.Join(append(chain, fullName), " -> "))
		}
	}
	s, err := r.Lookup(fullName)
	if err != nil {
		if len(chain) > 0 {
			return fmt.Errorf("%s references %v", chain[len(chain)-1], err)
		}
		return err
	}
	for _, f := range s.Fields {
		if f.Type.Msg == "" {
			continue
		}
		if err := r.checkResolvable(f.Type.Msg, append(chain, fullName)); err != nil {
			return err
		}
	}
	return nil
}

// LoadFS registers every "<pkg>/<Name>.msg" file found under root in
// fsys. It is how the toolchain ingests the msgs/idl tree.
func (r *Registry) LoadFS(fsys fs.FS, root string) error {
	return fs.WalkDir(fsys, root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		isMsg := strings.HasSuffix(p, ".msg")
		isSrv := strings.HasSuffix(p, ".srv")
		if d.IsDir() || (!isMsg && !isSrv) {
			return nil
		}
		rel := strings.TrimPrefix(p, root)
		rel = strings.TrimPrefix(rel, "/")
		dir, file := path.Split(rel)
		pkg := path.Base(strings.TrimSuffix(dir, "/"))
		if pkg == "." || pkg == "" {
			return fmt.Errorf("idl file %q is not inside a package directory", p)
		}
		data, err := fs.ReadFile(fsys, p)
		if err != nil {
			return fmt.Errorf("read %s: %w", p, err)
		}
		if isSrv {
			name := strings.TrimSuffix(file, ".srv")
			srv, err := ParseSrv(pkg, name, string(data))
			if err != nil {
				return err
			}
			r.RegisterService(srv)
			return nil
		}
		name := strings.TrimSuffix(file, ".msg")
		if _, err := r.ParseAndRegister(pkg, name, string(data)); err != nil {
			return err
		}
		return nil
	})
}

// FixedWireSize returns the ROS1 serialized size of a type if it is
// constant regardless of content, and whether it is. Strings and dynamic
// arrays (and anything embedding them) are variable.
func (r *Registry) FixedWireSize(t TypeSpec) (int, bool, error) {
	base := t.Base()
	var elem int
	switch {
	case base.Prim == PString:
		return 0, false, nil
	case base.Prim != PNone:
		elem = base.Prim.FixedSize()
	default:
		s, err := r.Lookup(base.Msg)
		if err != nil {
			return 0, false, err
		}
		total := 0
		for _, f := range s.Fields {
			n, fixed, err := r.FixedWireSize(f.Type)
			if err != nil || !fixed {
				return 0, false, err
			}
			total += n
		}
		elem = total
	}
	if !t.IsArray {
		return elem, true, nil
	}
	if t.ArrayLen < 0 {
		return 0, false, nil
	}
	return elem * t.ArrayLen, true, nil
}
