package msg

import (
	"fmt"
	"strings"
)

// Prim enumerates the ROS1 built-in field types.
type Prim uint8

// Built-in primitive types. PNone marks a complex (message) field type.
const (
	PNone Prim = iota
	PBool
	PInt8
	PUint8
	PInt16
	PUint16
	PInt32
	PUint32
	PInt64
	PUint64
	PFloat32
	PFloat64
	PString
	PTime
	PDuration
)

var primNames = map[Prim]string{
	PBool: "bool", PInt8: "int8", PUint8: "uint8", PInt16: "int16",
	PUint16: "uint16", PInt32: "int32", PUint32: "uint32", PInt64: "int64",
	PUint64: "uint64", PFloat32: "float32", PFloat64: "float64",
	PString: "string", PTime: "time", PDuration: "duration",
}

var primByName = map[string]Prim{
	"bool": PBool, "int8": PInt8, "uint8": PUint8, "int16": PInt16,
	"uint16": PUint16, "int32": PInt32, "uint32": PUint32, "int64": PInt64,
	"uint64": PUint64, "float32": PFloat32, "float64": PFloat64,
	"string": PString, "time": PTime, "duration": PDuration,
	// ROS1 deprecated aliases.
	"byte": PInt8, "char": PUint8,
}

// String returns the ROS spelling of the primitive.
func (p Prim) String() string {
	if s, ok := primNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Prim(%d)", uint8(p))
}

// FixedSize returns the wire size of a fixed-size primitive, or 0 for
// string (variable) and PNone.
func (p Prim) FixedSize() int {
	switch p {
	case PBool, PInt8, PUint8:
		return 1
	case PInt16, PUint16:
		return 2
	case PInt32, PUint32, PFloat32:
		return 4
	case PInt64, PUint64, PFloat64, PTime, PDuration:
		return 8
	default:
		return 0
	}
}

// TypeSpec is a field's type: a primitive or a message reference, possibly
// wrapped in a fixed ([N]) or dynamic ([]) array.
type TypeSpec struct {
	Prim     Prim   // PNone for message types
	Msg      string // "pkg/Name" for message types
	IsArray  bool
	ArrayLen int // -1 for dynamic arrays, element count for fixed ones
}

// Base returns the type without its array wrapper.
func (t TypeSpec) Base() TypeSpec {
	t.IsArray, t.ArrayLen = false, 0
	return t
}

// String formats the type in .msg syntax.
func (t TypeSpec) String() string {
	var b strings.Builder
	if t.Prim != PNone {
		b.WriteString(t.Prim.String())
	} else {
		b.WriteString(t.Msg)
	}
	if t.IsArray {
		if t.ArrayLen >= 0 {
			fmt.Fprintf(&b, "[%d]", t.ArrayLen)
		} else {
			b.WriteString("[]")
		}
	}
	return b.String()
}

// FieldSpec is one declared field of a message.
type FieldSpec struct {
	Name string
	Type TypeSpec
}

// ConstSpec is one declared constant of a message.
type ConstSpec struct {
	Name  string
	Type  TypeSpec // always a non-array primitive
	Value string   // literal text as written in the .msg file
}

// Spec is a parsed message definition.
type Spec struct {
	Package string // e.g. "sensor_msgs"
	Name    string // e.g. "Image"
	Fields  []FieldSpec
	Consts  []ConstSpec
	Raw     string // original definition text
}

// FullName returns the canonical "pkg/Name" type name.
func (s *Spec) FullName() string { return s.Package + "/" + s.Name }

// Format renders the spec back to canonical .msg syntax. Parse∘Format is a
// fixpoint, which the property tests rely on.
func (s *Spec) Format() string {
	var b strings.Builder
	for _, c := range s.Consts {
		fmt.Fprintf(&b, "%s %s=%s\n", c.Type.String(), c.Name, c.Value)
	}
	for _, f := range s.Fields {
		fmt.Fprintf(&b, "%s %s\n", f.Type.String(), f.Name)
	}
	return b.String()
}
