// Package msg implements the ROS1 message IDL toolchain that the ROS-SF
// paper builds on: a parser for .msg definition files, a process-wide type
// registry, ROS-compatible MD5 type checksums, and a dynamic (schema-
// driven) message representation used by the serializer substrates and by
// cross-format property tests.
//
// The static, generated representations (regular structs with ROS1
// serializers, and SFM skeleton structs) are produced from these specs by
// cmd/sfmgen; see internal/gen.
package msg
