package msg

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"strings"
)

// MD5 computes the ROS1-style type checksum for a message. Following
// genmsg: the hashed text lists constants ("type NAME=value") first, then
// fields; a built-in field keeps its array suffix ("uint8[] data"), while
// an embedded message type is replaced by that message's own MD5 (array
// suffix dropped). Publishers and subscribers exchange this checksum in
// the connection header and refuse mismatched definitions.
func (r *Registry) MD5(fullName string) (string, error) {
	return r.md5For(fullName, nil)
}

func (r *Registry) md5For(fullName string, chain []string) (string, error) {
	r.mu.RLock()
	cached, ok := r.md5s[fullName]
	r.mu.RUnlock()
	if ok {
		return cached, nil
	}
	for _, c := range chain {
		if c == fullName {
			return "", fmt.Errorf("recursive message embedding at %s", fullName)
		}
	}
	s, err := r.Lookup(fullName)
	if err != nil {
		return "", err
	}

	var lines []string
	for _, c := range s.Consts {
		lines = append(lines, fmt.Sprintf("%s %s=%s", c.Type.String(), c.Name, c.Value))
	}
	for _, f := range s.Fields {
		if f.Type.Prim != PNone {
			lines = append(lines, fmt.Sprintf("%s %s", f.Type.String(), f.Name))
			continue
		}
		sub, err := r.md5For(f.Type.Msg, append(chain, fullName))
		if err != nil {
			return "", err
		}
		lines = append(lines, fmt.Sprintf("%s %s", sub, f.Name))
	}

	sum := md5.Sum([]byte(strings.Join(lines, "\n")))
	digest := hex.EncodeToString(sum[:])
	r.mu.Lock()
	r.md5s[fullName] = digest
	r.mu.Unlock()
	return digest, nil
}
