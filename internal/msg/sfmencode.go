package msg

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
)

// EncodeSFM builds a native-endian SFM whole-message frame from a
// Dynamic value using only the IDL — the spec-driven counterpart of
// constructing a generated struct in an arena. The resulting frame can
// be adopted by a matching generated type or decoded with DecodeSFM.
func (r *Registry) EncodeSFM(d *Dynamic) ([]byte, error) {
	l, err := r.SFMLayoutOf(d.Spec.FullName())
	if err != nil {
		return nil, err
	}
	frame := make([]byte, l.Size, l.Size*4)
	frame, err = r.encodeSFMAt(frame, 0, l, d)
	if err != nil {
		return nil, err
	}
	return frame, nil
}

// encodeSFMAt fills the skeleton at base (already zeroed) and appends
// payload regions at the end of frame, returning the grown frame.
func (r *Registry) encodeSFMAt(frame []byte, base int, l *SFMLayout, d *Dynamic) ([]byte, error) {
	for i := range l.Fields {
		f := &l.Fields[i]
		v, ok := d.Fields[f.Name]
		if !ok {
			return nil, fmt.Errorf("%s: missing field %s", l.TypeName, f.Name)
		}
		var err error
		frame, err = r.encodeSFMField(frame, base+f.Off, f, v)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: %w", l.TypeName, f.Name, err)
		}
	}
	return frame, nil
}

func (r *Registry) encodeSFMField(frame []byte, at int, f *SFMField, v any) ([]byte, error) {
	t := f.Type
	base := t.Base()
	switch {
	case !t.IsArray && base.Prim == PString:
		return encodeSFMString(frame, at, v.(string))
	case !t.IsArray && base.Prim == PNone:
		sub, ok := v.(*Dynamic)
		if !ok {
			return nil, fmt.Errorf("expected *Dynamic, got %T", v)
		}
		return r.encodeSFMAt(frame, at, f.Nested, sub)
	case !t.IsArray:
		return frame, encodeSFMScalar(frame, at, base.Prim, v)
	case t.ArrayLen >= 0:
		return r.encodeSFMElems(frame, at, f, v, t.ArrayLen)
	default:
		rv := reflect.ValueOf(v)
		if rv.Kind() != reflect.Slice {
			return nil, fmt.Errorf("expected slice, got %T", v)
		}
		count := rv.Len()
		if count == 0 {
			return frame, nil // zero descriptor = empty vector
		}
		// Grow the payload region, aligned like core.Vector.Resize.
		align := f.ElemAlign
		if align < 1 {
			align = 1
		}
		start := alignInt(len(frame), align)
		need := start + count*f.ElemSize
		for len(frame) < need {
			frame = append(frame, 0)
		}
		binary.NativeEndian.PutUint32(frame[at:], uint32(count))
		binary.NativeEndian.PutUint32(frame[at+4:], uint32(start-at))
		return r.encodeSFMElems(frame, start, f, v, count)
	}
}

func (r *Registry) encodeSFMElems(frame []byte, at int, f *SFMField, v any, count int) ([]byte, error) {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Slice {
		return nil, fmt.Errorf("expected slice, got %T", v)
	}
	if rv.Len() != count {
		return nil, fmt.Errorf("have %d elements, want %d", rv.Len(), count)
	}
	base := f.Type.Base()
	for i := 0; i < count; i++ {
		pos := at + i*f.ElemSize
		elem := rv.Index(i).Interface()
		var err error
		switch {
		case base.Prim == PString:
			frame, err = encodeSFMString(frame, pos, elem.(string))
		case base.Prim == PNone:
			sub, ok := elem.(*Dynamic)
			if !ok {
				return nil, fmt.Errorf("expected *Dynamic element, got %T", elem)
			}
			frame, err = r.encodeSFMAt(frame, pos, f.Nested, sub)
		default:
			err = encodeSFMScalar(frame, pos, base.Prim, elem)
		}
		if err != nil {
			return nil, err
		}
	}
	return frame, nil
}

func encodeSFMString(frame []byte, at int, s string) ([]byte, error) {
	if len(s) == 0 {
		return frame, nil // zero descriptor = unset/empty
	}
	padded := alignInt(len(s)+1, 4)
	start := alignInt(len(frame), 4)
	need := start + padded
	for len(frame) < need {
		frame = append(frame, 0)
	}
	copy(frame[start:], s)
	binary.NativeEndian.PutUint32(frame[at:], uint32(padded))
	binary.NativeEndian.PutUint32(frame[at+4:], uint32(start-at))
	return frame, nil
}

func encodeSFMScalar(frame []byte, at int, p Prim, v any) error {
	b := frame[at:]
	switch p {
	case PBool:
		if v.(bool) {
			b[0] = 1
		} else {
			b[0] = 0
		}
	case PInt8:
		b[0] = byte(v.(int8))
	case PUint8:
		b[0] = v.(uint8)
	case PInt16:
		binary.NativeEndian.PutUint16(b, uint16(v.(int16)))
	case PUint16:
		binary.NativeEndian.PutUint16(b, v.(uint16))
	case PInt32:
		binary.NativeEndian.PutUint32(b, uint32(v.(int32)))
	case PUint32:
		binary.NativeEndian.PutUint32(b, v.(uint32))
	case PInt64:
		binary.NativeEndian.PutUint64(b, uint64(v.(int64)))
	case PUint64:
		binary.NativeEndian.PutUint64(b, v.(uint64))
	case PFloat32:
		binary.NativeEndian.PutUint32(b, math.Float32bits(v.(float32)))
	case PFloat64:
		binary.NativeEndian.PutUint64(b, math.Float64bits(v.(float64)))
	case PTime:
		tv := v.(Time)
		binary.NativeEndian.PutUint32(b, tv.Sec)
		binary.NativeEndian.PutUint32(b[4:], tv.Nsec)
	case PDuration:
		dv := v.(Duration)
		binary.NativeEndian.PutUint32(b, uint32(dv.Sec))
		binary.NativeEndian.PutUint32(b[4:], uint32(dv.Nsec))
	default:
		return fmt.Errorf("unsupported scalar %v", p)
	}
	return nil
}

// buildTypedSlice mirrors ser.BuildSlice for package-internal use.
func buildTypedSlice(base TypeSpec, n int, next func() (any, error)) (any, error) {
	switch base.Prim {
	case PBool:
		return fillTyped[bool](n, next)
	case PInt8:
		return fillTyped[int8](n, next)
	case PUint8:
		return fillTyped[uint8](n, next)
	case PInt16:
		return fillTyped[int16](n, next)
	case PUint16:
		return fillTyped[uint16](n, next)
	case PInt32:
		return fillTyped[int32](n, next)
	case PUint32:
		return fillTyped[uint32](n, next)
	case PInt64:
		return fillTyped[int64](n, next)
	case PUint64:
		return fillTyped[uint64](n, next)
	case PFloat32:
		return fillTyped[float32](n, next)
	case PFloat64:
		return fillTyped[float64](n, next)
	case PString:
		return fillTyped[string](n, next)
	case PTime:
		return fillTyped[Time](n, next)
	case PDuration:
		return fillTyped[Duration](n, next)
	case PNone:
		return fillTyped[*Dynamic](n, next)
	default:
		return nil, fmt.Errorf("unsupported primitive %v", base.Prim)
	}
}

func fillTyped[T any](n int, next func() (any, error)) ([]T, error) {
	out := make([]T, n)
	for i := range out {
		v, err := next()
		if err != nil {
			return nil, err
		}
		tv, ok := v.(T)
		if !ok {
			return nil, fmt.Errorf("element %d: expected %T, got %T", i, out[i], v)
		}
		out[i] = tv
	}
	return out, nil
}

func float32frombits(b uint32) float32 { return math.Float32frombits(b) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
