package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// histRing is the number of retained samples. A power of two keeps the
// modulo cheap; 1024 samples bound the memory per instrument to 8 KiB
// while giving stable tail quantiles at steady state.
const histRing = 1024

// ValueHistogram records int64 samples into a fixed ring of recent
// observations and computes quantiles over them on demand. Observe is
// one atomic fetch-add plus one atomic store — no locks, no allocation
// — so it is safe on the publish/dispatch hot path. Quantiles are
// computed over the most recent histRing observations (a sliding
// window, not the full history), which is what a live `rostopic stats`
// wants anyway. It is the shared ring behind the duration-typed
// Histogram and the unit-typed egress instruments (frames/write,
// bytes/write).
type ValueHistogram struct {
	n     atomic.Uint64
	slots [histRing]atomic.Int64
}

// Observe records one sample. Safe on a nil histogram.
func (h *ValueHistogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := h.n.Add(1) - 1
	h.slots[i%histRing].Store(v)
}

// Count returns the total number of observations ever recorded.
func (h *ValueHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// ValueStats is a quantile summary of a ValueHistogram window.
type ValueStats struct {
	Count uint64 `json:"count"` // observations ever recorded
	Min   int64  `json:"min"`   // over the retained window
	Max   int64  `json:"max"`   //
	P50   int64  `json:"p50"`   //
	P95   int64  `json:"p95"`   //
	P99   int64  `json:"p99"`   //
}

// Stats summarises the retained window. Concurrent Observe calls may
// tear individual slots between the count read and the copy; for a
// monitoring summary that imprecision is acceptable and documented.
func (h *ValueHistogram) Stats() ValueStats {
	if h == nil {
		return ValueStats{}
	}
	n := h.n.Load()
	if n == 0 {
		return ValueStats{}
	}
	w := int(n)
	if w > histRing {
		w = histRing
	}
	samples := make([]int64, w)
	for i := 0; i < w; i++ {
		samples[i] = h.slots[i].Load()
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	q := func(p float64) int64 {
		return samples[int(p*float64(w-1))]
	}
	return ValueStats{
		Count: n,
		Min:   samples[0],
		Max:   samples[w-1],
		P50:   q(0.50),
		P95:   q(0.95),
		P99:   q(0.99),
	}
}

// Histogram records durations into a fixed ring of recent samples — a
// duration-typed view over ValueHistogram (same cost contract: one
// fetch-add plus one store per Observe, no locks, no allocation).
type Histogram struct {
	h ValueHistogram
}

// Observe records one duration. Safe on a nil histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.h.Observe(int64(d))
}

// Count returns the total number of observations ever recorded.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.h.Count()
}

// LatencyStats is a quantile summary of a Histogram window.
type LatencyStats struct {
	Count uint64        `json:"count"`  // observations ever recorded
	Min   time.Duration `json:"min_ns"` // over the retained window
	Max   time.Duration `json:"max_ns"` //
	P50   time.Duration `json:"p50_ns"` //
	P95   time.Duration `json:"p95_ns"` //
	P99   time.Duration `json:"p99_ns"` //
}

// Stats summarises the retained window (see ValueHistogram.Stats for
// the concurrency caveat).
func (h *Histogram) Stats() LatencyStats {
	if h == nil {
		return LatencyStats{}
	}
	v := h.h.Stats()
	return LatencyStats{
		Count: v.Count,
		Min:   time.Duration(v.Min),
		Max:   time.Duration(v.Max),
		P50:   time.Duration(v.P50),
		P95:   time.Duration(v.P95),
		P99:   time.Duration(v.P99),
	}
}
