package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// histRing is the number of retained samples. A power of two keeps the
// modulo cheap; 1024 samples bound the memory per instrument to 8 KiB
// while giving stable tail quantiles at steady state.
const histRing = 1024

// Histogram records durations into a fixed ring of recent samples and
// computes quantiles over them on demand. Observe is one atomic
// fetch-add plus one atomic store — no locks, no allocation — so it is
// safe on the publish/dispatch hot path. Quantiles are computed over the
// most recent histRing observations (a sliding window, not the full
// history), which is what a live `rostopic stats` wants anyway.
type Histogram struct {
	n     atomic.Uint64
	slots [histRing]atomic.Int64 // nanoseconds
}

// Observe records one duration. Safe on a nil histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := h.n.Add(1) - 1
	h.slots[i%histRing].Store(int64(d))
}

// Count returns the total number of observations ever recorded.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// LatencyStats is a quantile summary of a Histogram window.
type LatencyStats struct {
	Count uint64        `json:"count"`  // observations ever recorded
	Min   time.Duration `json:"min_ns"` // over the retained window
	Max   time.Duration `json:"max_ns"` //
	P50   time.Duration `json:"p50_ns"` //
	P95   time.Duration `json:"p95_ns"` //
	P99   time.Duration `json:"p99_ns"` //
}

// Stats summarises the retained window. Concurrent Observe calls may
// tear individual slots between the count read and the copy; for a
// monitoring summary that imprecision is acceptable and documented.
func (h *Histogram) Stats() LatencyStats {
	if h == nil {
		return LatencyStats{}
	}
	n := h.n.Load()
	if n == 0 {
		return LatencyStats{}
	}
	w := int(n)
	if w > histRing {
		w = histRing
	}
	samples := make([]int64, w)
	for i := 0; i < w; i++ {
		samples[i] = h.slots[i].Load()
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(w-1))
		return time.Duration(samples[i])
	}
	return LatencyStats{
		Count: n,
		Min:   time.Duration(samples[0]),
		Max:   time.Duration(samples[w-1]),
		P50:   q(0.50),
		P95:   q(0.95),
		P99:   q(0.99),
	}
}
