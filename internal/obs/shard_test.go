package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// singleLockRegistry is the pre-sharding reference layout: one mutex
// over the whole instrument namespace. The equivalence test drives an
// identical workload through it and through the sharded Registry, then
// requires byte-identical aggregated views.
type singleLockRegistry struct {
	mu   sync.Mutex
	pubs map[string]*PubStats
	subs map[string]*SubStats
}

func (r *singleLockRegistry) publisher(topic string) *PubStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.pubs[topic]
	if s == nil {
		s = &PubStats{}
		r.pubs[topic] = s
	}
	return s
}

func (r *singleLockRegistry) subscriber(topic string) *SubStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.subs[topic]
	if s == nil {
		s = &SubStats{}
		r.subs[topic] = s
	}
	return s
}

// TestShardedRegistryEquivalence drives the same concurrent workload —
// interleaved instrument lookups and atomic updates across many topics
// — into the sharded Registry and the single-lock reference, then
// requires the sharded snapshot's per-topic aggregates to be
// byte-identical (as JSON) to the reference's. Stripe assignment must
// be invisible in every aggregated view.
func TestShardedRegistryEquivalence(t *testing.T) {
	const workers = 16
	const topicsPerWorker = 50

	sharded := NewRegistry()
	ref := &singleLockRegistry{
		pubs: map[string]*PubStats{},
		subs: map[string]*SubStats{},
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < topicsPerWorker; i++ {
				topic := fmt.Sprintf("/shardeq/w%d/t%d", w, i)
				// Lookup several times (idempotent create) and update both
				// registries identically.
				sp, rp := sharded.Publisher(topic), ref.publisher(topic)
				sharded.Publisher(topic) // second lookup must return the same instrument
				for k := 0; k < 7; k++ {
					sp.Messages.Inc()
					rp.Messages.Inc()
				}
				sp.Bytes.Add(uint64(w*1000 + i))
				rp.Bytes.Add(uint64(w*1000 + i))
				ss, rs := sharded.Subscriber(topic), ref.subscriber(topic)
				ss.Messages.Add(3)
				rs.Messages.Add(3)
			}
		}(w)
	}
	wg.Wait()

	snap := sharded.Snapshot()
	if len(snap.Publishers) != workers*topicsPerWorker {
		t.Fatalf("sharded snapshot has %d publishers, want %d", len(snap.Publishers), workers*topicsPerWorker)
	}
	// Build the reference's view through the same snapshot structs and
	// compare as canonical JSON: identical keys, identical values.
	refPubs := map[string]PubSnapshot{}
	for k, v := range ref.pubs {
		refPubs[k] = PubSnapshot{
			Messages: v.Messages.Load(),
			Bytes:    v.Bytes.Load(),
			Drops:    v.Drops.Load(),
			FanOut:   v.FanOut.Load(),
			Latched:  v.Latched.Load(),
		}
	}
	refSubs := map[string]SubSnapshot{}
	for k, v := range ref.subs {
		refSubs[k] = SubSnapshot{
			Messages:             v.Messages.Load(),
			Bytes:                v.Bytes.Load(),
			Drops:                v.Drops.Load(),
			Reconnects:           v.Reconnects.Load(),
			Corrupt:              v.Corrupt.Load(),
			Stale:                v.Stale.Load(),
			TransportUnavailable: v.TransportUnavailable.Load(),
			Latency:              v.Latency.Stats(),
		}
	}
	gotPubs, _ := json.Marshal(snap.Publishers)
	wantPubs, _ := json.Marshal(refPubs)
	if string(gotPubs) != string(wantPubs) {
		t.Fatalf("sharded publisher snapshot differs from single-lock reference\nsharded: %.200s\nref:     %.200s", gotPubs, wantPubs)
	}
	gotSubs, _ := json.Marshal(snap.Subscribers)
	wantSubs, _ := json.Marshal(refSubs)
	if string(gotSubs) != string(wantSubs) {
		t.Fatalf("sharded subscriber snapshot differs from single-lock reference\nsharded: %.200s\nref:     %.200s", gotSubs, wantSubs)
	}

	// Topics() must be the sorted union, independent of striping.
	topics := sharded.Topics()
	if len(topics) != workers*topicsPerWorker {
		t.Fatalf("Topics() returned %d names, want %d", len(topics), workers*topicsPerWorker)
	}
	for i := 1; i < len(topics); i++ {
		if topics[i-1] >= topics[i] {
			t.Fatalf("Topics() not sorted at %d: %q >= %q", i, topics[i-1], topics[i])
		}
	}
}

// TestShardedRegistryLookupStability: a topic's instrument pointer is
// minted once and returned forever after, under concurrent first-touch
// races.
func TestShardedRegistryLookupStability(t *testing.T) {
	r := NewRegistry()
	const topic = "/stable/topic"
	const workers = 32
	ptrs := make([]*PubStats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ptrs[w] = r.Publisher(topic)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if ptrs[w] != ptrs[0] {
			t.Fatalf("worker %d got a different instrument pointer", w)
		}
	}
}

// TestShardedRegistrySnapshotDuringChurn runs snapshots concurrently
// with lookups and updates — the race detector turns any unguarded
// stripe access into a failure, and snapshots must always be internally
// consistent (no torn map reads).
func TestShardedRegistrySnapshotDuringChurn(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Publisher(fmt.Sprintf("/churn/w%d/t%d", w, i%100)).Messages.Inc()
				r.Subscriber(fmt.Sprintf("/churn/w%d/t%d", w, i%100)).Messages.Inc()
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		snap := r.Snapshot()
		for k := range snap.Publishers {
			if k == "" {
				t.Fatal("empty topic key in snapshot")
			}
		}
		r.Topics()
	}
	close(stop)
	wg.Wait()
}
