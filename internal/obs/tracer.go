package obs

import (
	"fmt"
	"sync"

	"rossf/internal/core"
)

// Tracer collects core life-cycle trace events (Allocated → Published →
// Destructed, grows, and stale-access detections) into a bounded ring.
// It exists for diagnosis and tests; while no Tracer is enabled the SFM
// fast path pays only the disabled-hook nil check inside core.
type Tracer struct {
	mu     sync.Mutex
	ring   []core.TraceEvent
	next   int
	full   bool
	counts [8]uint64 // indexed by TraceOp
}

// EnableTracing installs a Tracer as the process-wide life-cycle hook,
// retaining the most recent capacity events (minimum 64). It replaces
// any previously installed hook; call Stop to uninstall.
func EnableTracing(capacity int) *Tracer {
	if capacity < 64 {
		capacity = 64
	}
	t := &Tracer{ring: make([]core.TraceEvent, capacity)}
	core.SetTrace(t.record)
	return t
}

// Stop uninstalls the trace hook. Collected events remain readable.
func (t *Tracer) Stop() { core.SetTrace(nil) }

func (t *Tracer) record(ev core.TraceEvent) {
	t.mu.Lock()
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next, t.full = 0, true
	}
	if int(ev.Op) < len(t.counts) {
		t.counts[ev.Op]++
	}
	t.mu.Unlock()
}

// Events returns the retained events in arrival order.
func (t *Tracer) Events() []core.TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]core.TraceEvent(nil), t.ring[:t.next]...)
	}
	out := make([]core.TraceEvent, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Count returns how many events of op were observed (including ones
// that have rotated out of the ring).
func (t *Tracer) Count(op core.TraceOp) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(op) >= len(t.counts) {
		return 0
	}
	return t.counts[op]
}

// Format renders one event for logs.
func Format(ev core.TraceEvent) string {
	return fmt.Sprintf("%s %s base=%#x gen=%d state=%s refs=%d bytes=%d",
		ev.Time.Format("15:04:05.000000"), ev.Op, ev.Base, ev.Gen, ev.State, ev.Refs, ev.Bytes)
}
