package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"rossf/internal/core"
)

type leakImage struct {
	Height uint32
	Width  uint32
	Data   core.Vector[uint8]
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Fatalf("nil Counter.Load = %d", c.Load())
	}
	var g *Gauge
	g.Add(3)
	g.Set(-1)
	if g.Load() != 0 {
		t.Fatalf("nil Gauge.Load = %d", g.Load())
	}
	var r *Registry
	if r.Publisher("x") != nil || r.Subscriber("x") != nil || r.Service("x") != nil {
		t.Fatalf("nil Registry returned non-nil instruments")
	}
	if got := r.Topics(); got != nil {
		t.Fatalf("nil Registry.Topics = %v", got)
	}
	// Snapshot on a nil registry still reports core stats.
	snap := r.Snapshot()
	if snap.Publishers == nil || snap.Subscribers == nil || snap.Services == nil {
		t.Fatalf("nil Registry.Snapshot maps not initialised")
	}
}

func TestCountersAndGauges(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("Counter = %d, want 8000", c.Load())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Load() != 7 {
		t.Fatalf("Gauge = %d, want 7", g.Load())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if st := h.Stats(); st.Count != 0 || st.P99 != 0 {
		t.Fatalf("empty histogram stats = %+v", st)
	}
	// 1..100ms uniformly: quantiles are unambiguous.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	st := h.Stats()
	if st.Count != 100 {
		t.Fatalf("Count = %d, want 100", st.Count)
	}
	if st.Min != 1*time.Millisecond || st.Max != 100*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", st.Min, st.Max)
	}
	check := func(name string, got, lo, hi time.Duration) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %v, want within [%v, %v]", name, got, lo, hi)
		}
	}
	check("P50", st.P50, 49*time.Millisecond, 52*time.Millisecond)
	check("P95", st.P95, 94*time.Millisecond, 97*time.Millisecond)
	check("P99", st.P99, 98*time.Millisecond, 100*time.Millisecond)
}

func TestHistogramRingRetainsNewest(t *testing.T) {
	var h Histogram
	// Overflow the ring with old small samples, then fill it entirely
	// with large ones: stats must reflect only the retained window.
	for i := 0; i < histRing; i++ {
		h.Observe(1 * time.Microsecond)
	}
	for i := 0; i < histRing; i++ {
		h.Observe(1 * time.Second)
	}
	st := h.Stats()
	if st.Min != time.Second {
		t.Fatalf("Min = %v after window rollover, want 1s", st.Min)
	}
	if st.Count != 2*histRing {
		t.Fatalf("Count = %d, want %d (total observations)", st.Count, 2*histRing)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	p1 := r.Publisher("/a")
	p2 := r.Publisher("/a")
	if p1 != p2 {
		t.Fatalf("Publisher not memoised")
	}
	s1 := r.Subscriber("/a")
	if s1 == nil || s1 != r.Subscriber("/a") {
		t.Fatalf("Subscriber not memoised")
	}
	v1 := r.Service("/srv")
	if v1 == nil || v1 != r.Service("/srv") {
		t.Fatalf("Service not memoised")
	}

	p1.Messages.Add(3)
	p1.Bytes.Add(1024)
	s1.Drops.Inc()
	s1.Latency.Observe(2 * time.Millisecond)
	v1.Calls.Inc()
	v1.Errors.Inc()

	snap := r.Snapshot()
	if snap.Publishers["/a"].Messages != 3 || snap.Publishers["/a"].Bytes != 1024 {
		t.Fatalf("pub snapshot = %+v", snap.Publishers["/a"])
	}
	if snap.Subscribers["/a"].Drops != 1 || snap.Subscribers["/a"].Latency.Count != 1 {
		t.Fatalf("sub snapshot = %+v", snap.Subscribers["/a"])
	}
	if snap.Services["/srv"].Calls != 1 || snap.Services["/srv"].Errors != 1 {
		t.Fatalf("svc snapshot = %+v", snap.Services["/srv"])
	}

	topics := r.Topics()
	if len(topics) != 1 || topics[0] != "/a" {
		t.Fatalf("Topics = %v, want [/a]", topics)
	}

	// The snapshot must round-trip as JSON (the /metrics contract).
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Publishers["/a"].Messages != 3 {
		t.Fatalf("JSON round-trip lost data: %+v", back.Publishers["/a"])
	}
}

func TestSnapshotTracksCoreLifecycle(t *testing.T) {
	r := NewRegistry()
	before := r.Snapshot().Core

	img, err := core.New[leakImage]()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mid := r.Snapshot().Core
	if mid.Live != before.Live+1 || mid.StateAllocated != before.StateAllocated+1 {
		t.Fatalf("snapshot did not observe the allocation: before=%+v mid=%+v", before, mid)
	}
	core.Release(img)
	after := r.Snapshot().Core
	if after.Live != before.Live || after.Frees != mid.Frees+1 {
		t.Fatalf("snapshot did not observe the free: before=%+v after=%+v", before, after)
	}
}

func TestGraphSnapshot(t *testing.T) {
	r := NewRegistry()
	g := r.Graph()
	g.MasterReconnects.Inc()
	g.Replays.Add(2)
	g.ResyncLatency.Observe(3 * time.Millisecond)
	g.GhostExpiries.Inc()
	g.MalformedLines.Add(4)
	g.Degraded.Add(1)

	snap := r.Snapshot().Graph
	if snap.MasterReconnects != 1 || snap.Replays != 2 || snap.GhostExpiries != 1 ||
		snap.MalformedLines != 4 || snap.Degraded != 1 || snap.Resync.Count != 1 {
		t.Fatalf("graph snapshot = %+v", snap)
	}
	g.Degraded.Add(-1)
	if got := r.Snapshot().Graph.Degraded; got != 0 {
		t.Fatalf("degraded gauge after recovery = %d, want 0", got)
	}

	// A nil registry's accessor must not panic (disabled metrics path;
	// callers substitute a private sink for the nil).
	var nilReg *Registry
	if nilReg.Graph() != nil {
		t.Fatal("nil registry returned non-nil graph stats")
	}

	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	for _, key := range []string{"master_reconnects", "replays", "resync", "ghost_expiries", "malformed_lines", "degraded"} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("snapshot JSON missing %q: %s", key, b)
		}
	}
}

func TestTracerRingAndCounts(t *testing.T) {
	tr := EnableTracing(64)
	defer tr.Stop()

	img, err := core.New[leakImage]()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := img.Data.Resize(8); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	core.MarkPublished(img) //nolint:errcheck
	core.Release(img)

	if tr.Count(core.TraceAlloc) == 0 || tr.Count(core.TraceGrow) == 0 ||
		tr.Count(core.TracePublish) == 0 || tr.Count(core.TraceDestruct) == 0 {
		t.Fatalf("missing life-cycle events: alloc=%d grow=%d publish=%d destruct=%d",
			tr.Count(core.TraceAlloc), tr.Count(core.TraceGrow),
			tr.Count(core.TracePublish), tr.Count(core.TraceDestruct))
	}
	evs := tr.Events()
	if len(evs) < 4 {
		t.Fatalf("Events returned %d entries, want >= 4", len(evs))
	}
	for _, ev := range evs {
		if Format(ev) == "" {
			t.Fatalf("Format returned empty string for %+v", ev)
		}
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := EnableTracing(64)
	defer tr.Stop()
	for i := 0; i < 200; i++ {
		img, err := core.New[leakImage]()
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		core.Release(img)
	}
	if n := len(tr.Events()); n > 64 {
		t.Fatalf("ring held %d events, capacity 64", n)
	}
	if tr.Count(core.TraceAlloc) != 200 {
		t.Fatalf("alloc count = %d, want 200 (counts survive ring eviction)", tr.Count(core.TraceAlloc))
	}
}

func TestLeakGuardDetectsAndClears(t *testing.T) {
	g := NewLeakGuard()
	img, err := core.New[leakImage]()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := g.Check(50 * time.Millisecond); err == nil {
		t.Fatalf("Check passed with a live message outstanding")
	}
	core.Release(img)
	if err := g.Check(time.Second); err != nil {
		t.Fatalf("Check failed after release: %v", err)
	}
}

// recorderTB captures CheckLeaks failures instead of failing the test.
type recorderTB struct {
	mu       sync.Mutex
	errors   []string
	cleanups []func()
}

func (r *recorderTB) Helper() {}
func (r *recorderTB) Errorf(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.errors = append(r.errors, format)
}
func (r *recorderTB) Cleanup(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cleanups = append(r.cleanups, f)
}
func (r *recorderTB) runCleanups() {
	r.mu.Lock()
	cs := r.cleanups
	r.cleanups = nil
	r.mu.Unlock()
	for i := len(cs) - 1; i >= 0; i-- {
		cs[i]()
	}
}

func TestCheckLeaksReportsViaCleanup(t *testing.T) {
	// Clean run: no errors recorded.
	clean := &recorderTB{}
	CheckLeaks(clean, 100*time.Millisecond)
	img, err := core.New[leakImage]()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	core.Release(img)
	clean.runCleanups()
	if len(clean.errors) != 0 {
		t.Fatalf("clean run reported: %v", clean.errors)
	}

	// Leaky run: the cleanup must flag the outstanding message.
	leaky := &recorderTB{}
	CheckLeaks(leaky, 50*time.Millisecond)
	leak, err := core.New[leakImage]()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	leaky.runCleanups()
	if len(leaky.errors) == 0 {
		t.Fatalf("leaky run reported no errors")
	}
	core.Release(leak)
}
