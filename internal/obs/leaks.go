package obs

import (
	"fmt"
	"time"

	"rossf/internal/core"
)

// LeakGuard detects leaked serialization-free messages: every arena a
// test allocates must be destructed by the time the test tears down, or
// the pool-recycling design silently accumulates pinned memory. The
// guard captures the live-message baseline at construction and verifies
// the process returns to it.
type LeakGuard struct {
	baseLive  int   // global index entries at construction
	baseMgr   int64 // default-manager live gauge at construction
	baseBytes int64 // default-manager live-bytes gauge at construction
}

// NewLeakGuard captures the current live-message baseline.
func NewLeakGuard() *LeakGuard {
	st := core.Default().Stats()
	return &LeakGuard{
		baseLive:  core.LiveMessages(),
		baseMgr:   st.Live,
		baseBytes: st.BytesLive,
	}
}

// Check polls until the live-message gauges return to the baseline or
// timeout elapses, then reports any excess as an error. Polling (rather
// than a single read) absorbs asynchronous teardown: transport
// goroutines release their refs on their own schedule after Close.
func (g *LeakGuard) Check(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		live := core.LiveMessages()
		st := core.Default().Stats()
		if live <= g.baseLive && st.Live <= g.baseMgr && st.BytesLive <= g.baseBytes {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf(
				"leaked messages: %d live globally (baseline %d), manager live %d (baseline %d), %d bytes live (baseline %d)",
				live, g.baseLive, st.Live, g.baseMgr, st.BytesLive, g.baseBytes)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TB is the subset of *testing.T that CheckLeaks needs; an interface so
// this package does not import testing into production binaries.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// CheckLeaks captures the current baseline and registers a cleanup on
// tb that fails the test if live messages have not returned to it
// within timeout. Call it FIRST in a test (or harness constructor) so
// its LIFO-ordered cleanup runs after every other teardown.
func CheckLeaks(tb TB, timeout time.Duration) {
	g := NewLeakGuard()
	tb.Cleanup(func() {
		tb.Helper()
		if err := g.Check(timeout); err != nil {
			tb.Errorf("obs.CheckLeaks: %v", err)
		}
	})
}
