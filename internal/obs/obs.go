// Package obs is the middleware's observability substrate: a lock-cheap
// metrics registry with per-topic publisher/subscriber instruments,
// ring-buffer latency histograms, life-cycle tracing glue for
// internal/core, and a leak-detection helper for tests.
//
// The design constraint is the paper's transparency claim: measuring the
// serialization-free fast path must not change it. Every instrument
// update is a single atomic operation on pre-allocated state, so an
// instrumented publish performs zero additional heap allocations; the
// life-cycle trace costs one atomic pointer load when disabled.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rossf/internal/core"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a signed instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// SetMax raises the gauge to v if v is larger than the current value
// (monotonic high-water update, e.g. the highest master epoch seen).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// PubStats instruments one publisher endpoint.
type PubStats struct {
	Messages Counter // publishes fanned out
	Bytes    Counter // payload bytes handed to the transport
	Drops    Counter // frames dropped by per-connection send queues
	FanOut   Gauge   // current subscriber connections (TCP + in-process)
	Latched  Gauge   // 1 when a latched message is retained
}

// SubStats instruments one subscriber.
type SubStats struct {
	Messages   Counter // messages delivered to the callback
	Bytes      Counter // payload bytes delivered
	Drops      Counter // messages dropped by the dispatch queue
	Reconnects Counter // dial retries after a connection failure
	Corrupt    Counter // frames rejected by integrity checks
	Stale      Counter // shm descriptors rejected by generation checks
	// TransportUnavailable counts reconcile passes in which publishers
	// exist for the topic but none is reachable over the subscription's
	// transport mode (e.g. TransportInproc with only remote publishers) —
	// the signal behind the "silent empty subscription" log line.
	TransportUnavailable Counter
	Latency              Histogram // receive/publish → callback-return latency
}

// ShmStats instruments the shared-memory transport, registry-wide: one
// set of gauges per process serves every store and mapper wired to the
// registry.
//
// Fallbacks is the aggregate: every shm-capable path that shipped an
// inline TCP copy instead of a descriptor. The per-reason counters
// split it by WHY, because "negotiated shm but fell back" is a
// transparency bug (Agnocast's silent-degradation failure mode) whose
// fix depends entirely on the reason: oversized means the message
// exceeds the transport's hard cap (by design), heap_arena means the
// arena predates the store and promotion also failed, peer_table_full /
// remote_peer / old_build are negotiation-time declines. Rare races
// (e.g. a Share losing to a concurrent lease reap) count only in the
// aggregate, so the total may slightly exceed the reason sum.
//
// BytesShared counts MAPPED extent, which since the v2 strided layout
// is a sparse virtual reservation — physical pages are committed only
// where messages actually wrote.
type ShmStats struct {
	SegmentsMapped  Gauge   // segments currently mmap'd (store + mapper sides)
	BytesShared     Gauge   // bytes of segment extent currently mapped (sparse)
	DescriptorSends Counter // messages delivered as descriptors instead of payloads
	Fallbacks       Counter // shm-capable paths that fell back to TCP (negotiation or per-message)
	LeasesReaped    Counter // crashed/expired subscriber leases reclaimed by publishers
	Promotions      Counter // heap-arena messages copied once into a shared slot at publish

	FallbackOversized     Counter // message capacity above the transport's hard cap
	FallbackHeapArena     Counter // heap-backed arena and publish-time promotion failed
	FallbackPeerTableFull Counter // subscriber declined: no free peer lease slot
	FallbackRemotePeer    Counter // subscriber offered shm but lives on another host/boot
	FallbackOldBuild      Counter // peer speaks an incompatible shm protocol revision
}

// EgressStats instruments the batched TCP egress path, registry-wide:
// every pubConn write loop wired to the registry feeds the same set, so
// the frames-per-write distribution describes the whole process's
// socket behaviour. Writes counts vectored writev calls (one per
// batch); Frames counts frames shipped inside them, so Frames/Writes >
// 1 is direct evidence batching engaged. Coalesced counts the subset of
// frames small enough that their bytes were copied into the contiguous
// batch scratch instead of travelling as their own iovec.
type EgressStats struct {
	Writes         Counter        // vectored socket writes (one per batch)
	Frames         Counter        // frames shipped across all writes
	Coalesced      Counter        // small frames copied into batch scratch
	FramesPerWrite ValueHistogram // batch sizes, in frames
	BytesPerWrite  ValueHistogram // batch sizes, in bytes
}

// FieldwireStats instruments selective field transmission
// (internal/fieldwire), registry-wide. MaskedSubscriptions counts mask
// negotiations that succeeded (publisher side at accept, subscriber
// side on entering the sparse pump — a process doing both counts both).
// BytesSaved is wire payload bytes NOT sent relative to full frames on
// masked connections. Rejects break down by the stable reason strings
// of fieldwire.RejectReason; DecodeErrors and MaskFallbacks instrument
// the subscriber side (malformed sparse payloads dropped, and
// connections that gave masks up and redialed for full frames).
type FieldwireStats struct {
	MaskedSubscriptions Counter // field masks successfully negotiated
	SparseFrames        Counter // frames shipped as range tables
	FullFrames          Counter // frames shipped whole on masked conns (per-message fallback)
	BytesSaved          Counter // payload bytes elided vs full frames
	MaskRejects         Counter // masks the publisher refused (conn falls back to full frames)

	RejectNoMap      Counter // publisher has no wire map for the type (old build / raw)
	RejectUnmappable Counter // a requested path names no field
	RejectVarTail    Counter // variable-length data nested inside a sequence

	DecodeErrors  Counter // malformed sparse payloads dropped by a subscriber
	MaskFallbacks Counter // subscriber conns that disabled masks and redialed
}

// FanoutStats instruments the sharded egress fan-out plane,
// registry-wide: every publisher endpoint whose connection count
// crosses the sharding threshold (or that was configured with a forced
// shard count) feeds the same set. ShardDrops counts whole-shard queue
// overflows — one increment means every subscriber behind that shard
// missed one publish, the sharded analogue of a per-connection queue
// drop.
type FanoutStats struct {
	ActiveShards Gauge   // egress shard loops currently running
	ShardedConns Gauge   // subscriber connections currently served by shards
	Rebalances   Counter // connections migrated between shards
	ShardDrops   Counter // shard-queue overflows (publish dropped for a whole shard)
}

// EgressShardStats instruments one egress shard: its member count and
// the socket traffic its writev loop produced. Instances are minted
// with Registry.EgressShard and live for the registry's lifetime (a
// shard that shuts down zeroes its Conns gauge but keeps its
// counters, so post-mortem snapshots still account for every frame).
type EgressShardStats struct {
	Conns  Gauge   // member connections currently assigned to this shard
	Frames Counter // frames delivered across member connections
	Writes Counter // vectored socket writes issued
	Bytes  Counter // wire bytes written (headers + payloads)
}

// RelayStats instruments relay processes (cmd/rosrelay), registry-wide:
// frames accepted from the origin publisher and re-fanned-out to the
// relay's own subscriber set. Mismatches counts frames the relay
// refused to forward because the origin's declared byte order differs
// from the relay's native one (forwarding would mislabel them).
type RelayStats struct {
	Active     Gauge   // relay pumps currently running
	FramesIn   Counter // frames received from the origin publisher
	BytesIn    Counter // payload bytes received from the origin
	FramesOut  Counter // frames handed to the relay's own egress
	Drops      Counter // frames the relay failed to forward
	Mismatches Counter // frames refused for byte-order mismatch
}

// GraphStats instruments the graph plane (master protocol), registry-
// wide: every RemoteMaster client and MasterServer wired to the
// registry feeds the same set. The client side records reconnects,
// journal replays, resync latency, and the degraded-mode gauge; the
// server side records ghost-client expiries. MalformedLines is shared:
// both the client read loop and the server request loop count protocol
// lines that failed to parse (each side also logs once per connection
// instead of dropping them invisibly).
type GraphStats struct {
	MasterReconnects Counter   // master connections re-established after loss
	Replays          Counter   // journal replays completed against a (re)connected master
	ResyncLatency    Histogram // connection-loss detection → replay complete
	GhostExpiries    Counter   // server: idle clients expired by the liveness watchdog
	MalformedLines   Counter   // protocol lines that failed JSON parsing (both sides)
	// Degraded counts master sessions currently in degraded mode
	// (disconnected, reconnect loop running, calls failing fast). Each
	// RemoteMaster contributes +1 while degraded, so a process with
	// several master clients reads the number of broken sessions.
	Degraded Gauge

	// Warm-standby failover instruments (DESIGN §3.14). Failovers counts
	// client sessions re-established against a DIFFERENT master address
	// than the previous session's (a reconnect to the same master is only
	// a MasterReconnect). FailedCandidates counts master candidates
	// skipped during redial — refused dials, stale-epoch zombies,
	// unpromoted standbys — each also logged once per candidate.
	Failovers        Counter
	FailedCandidates Counter
	// Epoch is the highest master epoch observed: servers publish their
	// own epoch, clients the highest seen in any response. Updated with
	// SetMax so a registry shared between a client and a server reads the
	// cluster's newest epoch.
	Epoch Gauge
	// ReplLastContact is the unix-nanosecond timestamp of the last
	// replication traffic a standby received from its primary (0 when the
	// process is not a follower). Snapshots convert it to
	// replication_lag_ms; a growing lag means the primary has gone silent
	// and the lease clock toward self-promotion is running.
	ReplLastContact Gauge
}

// ServiceStats instruments one service endpoint.
type ServiceStats struct {
	Calls   Counter   // requests served
	Errors  Counter   // requests that failed
	Latency Histogram // request → response latency
}

// registryShardCount is the number of hash stripes the instrument maps
// are split across. Power of two so the stripe index is a mask; 16
// stripes keep 64 concurrent lookup goroutines mostly collision-free
// while the per-stripe maps stay dense.
const registryShardCount = 16

// registryShard is one stripe of the instrument namespace: its own lock
// plus the slice of each map whose keys hash here.
type registryShard struct {
	mu   sync.Mutex
	pubs map[string]*PubStats
	subs map[string]*SubStats
	svcs map[string]*ServiceStats
}

// shardIndex stripes an instrument name with FNV-1a (inlined so lookup
// allocates nothing).
func shardIndex(key string) uint32 {
	const offset, prime = 2166136261, 16777619
	h := uint32(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime
	}
	return h & (registryShardCount - 1)
}

// Registry is a namespace of per-topic and per-service instruments.
// Instrument lookup takes one stripe's mutex — distinct topics hash to
// distinct stripes, so concurrent lookups on a 10k-topic graph don't
// serialize on a single lock. The instruments themselves are returned
// once, cached by the caller, and updated with atomics only — nothing
// on a message hot path ever touches a registry lock. Snapshots merge
// the stripes, so aggregated views are identical to the single-map
// layout's.
type Registry struct {
	shards [registryShardCount]registryShard
	shm    ShmStats
	// egress, fanout, relay and graph live outside the stripe locks like
	// shm: instruments are reached through the nil-safe accessors and
	// updated with atomics only.
	egress    EgressStats
	fanout    FanoutStats
	relay     RelayStats
	graph     GraphStats
	fieldwire FieldwireStats
	// eshards holds the per-shard instruments minted by EgressShard, in
	// mint order, under its own small lock (mints are rare; snapshots
	// copy the slice).
	eshardMu sync.Mutex
	eshards  []*EgressShardStats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].pubs = make(map[string]*PubStats)
		r.shards[i].subs = make(map[string]*SubStats)
		r.shards[i].svcs = make(map[string]*ServiceStats)
	}
	return r
}

// Shm returns the registry's shared-memory transport instruments. Safe
// on a nil registry (returns nil; instrument methods tolerate nil
// receivers and nil structs return zero snapshots).
func (r *Registry) Shm() *ShmStats {
	if r == nil {
		return nil
	}
	return &r.shm
}

// Egress returns the registry's batched-egress instruments. Safe on a
// nil registry (returns nil; instrument methods tolerate nil
// receivers).
func (r *Registry) Egress() *EgressStats {
	if r == nil {
		return nil
	}
	return &r.egress
}

// Fieldwire returns the registry's selective-field-transmission
// instruments. Safe on a nil registry (returns nil; instrument methods
// tolerate nil receivers).
func (r *Registry) Fieldwire() *FieldwireStats {
	if r == nil {
		return nil
	}
	return &r.fieldwire
}

// Fanout returns the registry's sharded fan-out instruments. Safe on a
// nil registry (returns nil; instrument methods tolerate nil
// receivers).
func (r *Registry) Fanout() *FanoutStats {
	if r == nil {
		return nil
	}
	return &r.fanout
}

// Relay returns the registry's relay-tier instruments. Safe on a nil
// registry (returns nil; instrument methods tolerate nil receivers).
func (r *Registry) Relay() *RelayStats {
	if r == nil {
		return nil
	}
	return &r.relay
}

// EgressShard mints a fresh per-shard instrument set and registers it
// for snapshots. Safe on a nil registry (returns nil; instrument
// methods tolerate nil receivers). Shards are expected to be few and
// long-lived — a bounded pool per busy publisher endpoint — so minted
// sets are never reclaimed.
func (r *Registry) EgressShard() *EgressShardStats {
	if r == nil {
		return nil
	}
	s := &EgressShardStats{}
	r.eshardMu.Lock()
	r.eshards = append(r.eshards, s)
	r.eshardMu.Unlock()
	return s
}

// Graph returns the registry's graph-plane instruments. Safe on a nil
// registry (returns nil; instrument methods tolerate nil receivers).
func (r *Registry) Graph() *GraphStats {
	if r == nil {
		return nil
	}
	return &r.graph
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Publisher returns the publisher instruments for topic, creating them
// on first use. Safe on a nil registry (returns nil; all instrument
// methods tolerate nil receivers).
func (r *Registry) Publisher(topic string) *PubStats {
	if r == nil {
		return nil
	}
	sh := &r.shards[shardIndex(topic)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.pubs[topic]
	if s == nil {
		s = &PubStats{}
		sh.pubs[topic] = s
	}
	return s
}

// Subscriber returns the subscriber instruments for topic, creating
// them on first use.
func (r *Registry) Subscriber(topic string) *SubStats {
	if r == nil {
		return nil
	}
	sh := &r.shards[shardIndex(topic)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.subs[topic]
	if s == nil {
		s = &SubStats{}
		sh.subs[topic] = s
	}
	return s
}

// Service returns the service instruments for name, creating them on
// first use.
func (r *Registry) Service(name string) *ServiceStats {
	if r == nil {
		return nil
	}
	sh := &r.shards[shardIndex(name)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.svcs[name]
	if s == nil {
		s = &ServiceStats{}
		sh.svcs[name] = s
	}
	return s
}

// PubSnapshot is the JSON form of one publisher's instruments.
type PubSnapshot struct {
	Messages uint64 `json:"messages"`
	Bytes    uint64 `json:"bytes"`
	Drops    uint64 `json:"drops"`
	FanOut   int64  `json:"fan_out"`
	Latched  int64  `json:"latched"`
}

// SubSnapshot is the JSON form of one subscriber's instruments.
type SubSnapshot struct {
	Messages             uint64       `json:"messages"`
	Bytes                uint64       `json:"bytes"`
	Drops                uint64       `json:"drops"`
	Reconnects           uint64       `json:"reconnects"`
	Corrupt              uint64       `json:"corrupt_frames"`
	Stale                uint64       `json:"stale_descriptors"`
	TransportUnavailable uint64       `json:"transport_unavailable"`
	Latency              LatencyStats `json:"latency"`
}

// ShmSnapshot is the JSON form of the shared-memory transport gauges.
type ShmSnapshot struct {
	SegmentsMapped  int64               `json:"segments_mapped"`
	BytesShared     int64               `json:"bytes_shared"`
	DescriptorSends uint64              `json:"descriptor_sends"`
	Fallbacks       uint64              `json:"fallbacks"`
	FallbackReasons ShmFallbackSnapshot `json:"fallbacks_by_reason"`
	Promotions      uint64              `json:"promotions"`
	LeasesReaped    uint64              `json:"leases_reaped"`
}

// ShmFallbackSnapshot breaks the aggregate fallback counter down by
// reason. The aggregate may slightly exceed the sum: rare races (a
// Share losing to a concurrent lease reap) have no dedicated reason.
type ShmFallbackSnapshot struct {
	Oversized     uint64 `json:"oversized"`
	HeapArena     uint64 `json:"heap_arena"`
	PeerTableFull uint64 `json:"peer_table_full"`
	RemotePeer    uint64 `json:"remote_peer"`
	OldBuild      uint64 `json:"old_build"`
}

// EgressSnapshot is the JSON form of the batched-egress instruments,
// including the sharded fan-out plane and its per-shard breakdown.
type EgressSnapshot struct {
	Writes         uint64         `json:"writes"`
	Frames         uint64         `json:"frames"`
	Coalesced      uint64         `json:"coalesced_frames"`
	FramesPerWrite ValueStats     `json:"frames_per_write"`
	BytesPerWrite  ValueStats     `json:"bytes_per_write"`
	Fanout         FanoutSnapshot `json:"fanout"`
}

// FanoutSnapshot is the JSON form of the sharded fan-out instruments.
type FanoutSnapshot struct {
	ActiveShards int64                 `json:"active_shards"`
	ShardedConns int64                 `json:"sharded_conns"`
	Rebalances   uint64                `json:"rebalances"`
	ShardDrops   uint64                `json:"shard_drops"`
	Shards       []EgressShardSnapshot `json:"shards"`
}

// EgressShardSnapshot is the JSON form of one shard's instruments.
type EgressShardSnapshot struct {
	Conns  int64  `json:"conns"`
	Frames uint64 `json:"frames"`
	Writes uint64 `json:"writes"`
	Bytes  uint64 `json:"bytes"`
}

// FieldwireSnapshot is the JSON form of the selective-field-
// transmission instruments.
type FieldwireSnapshot struct {
	MaskedSubscriptions uint64                  `json:"masked_subscriptions"`
	SparseFrames        uint64                  `json:"sparse_frames"`
	FullFrames          uint64                  `json:"full_frames"`
	BytesSaved          uint64                  `json:"bytes_saved"`
	MaskRejects         uint64                  `json:"mask_rejects"`
	RejectReasons       FieldwireRejectSnapshot `json:"rejects_by_reason"`
	DecodeErrors        uint64                  `json:"decode_errors"`
	MaskFallbacks       uint64                  `json:"mask_fallbacks"`
}

// FieldwireRejectSnapshot breaks mask rejects down by reason (the
// stable strings of fieldwire.RejectReason).
type FieldwireRejectSnapshot struct {
	NoMap      uint64 `json:"no_wire_map"`
	Unmappable uint64 `json:"unmappable_field"`
	VarTail    uint64 `json:"variable_tail"`
}

// RelaySnapshot is the JSON form of the relay-tier instruments.
type RelaySnapshot struct {
	Active     int64  `json:"active"`
	FramesIn   uint64 `json:"frames_in"`
	BytesIn    uint64 `json:"bytes_in"`
	FramesOut  uint64 `json:"frames_out"`
	Drops      uint64 `json:"drops"`
	Mismatches uint64 `json:"mismatches"`
}

// GraphSnapshot is the JSON form of the graph-plane instruments.
type GraphSnapshot struct {
	MasterReconnects uint64       `json:"master_reconnects"`
	Replays          uint64       `json:"replays"`
	Resync           LatencyStats `json:"resync"`
	GhostExpiries    uint64       `json:"ghost_expiries"`
	MalformedLines   uint64       `json:"malformed_lines"`
	Degraded         int64        `json:"degraded"`
	Failovers        uint64       `json:"failovers"`
	FailedCandidates uint64       `json:"failed_candidates"`
	Epoch            int64        `json:"epoch"`
	// ReplicationLagMs is the age, in milliseconds, of the last
	// replication traffic a standby in this process received from its
	// primary; 0 when no follower is running.
	ReplicationLagMs int64 `json:"replication_lag_ms"`
}

// ServiceSnapshot is the JSON form of one service's instruments.
type ServiceSnapshot struct {
	Calls   uint64       `json:"calls"`
	Errors  uint64       `json:"errors"`
	Latency LatencyStats `json:"latency"`
}

// CoreSnapshot is the JSON form of the message manager's life-cycle
// gauges.
type CoreSnapshot struct {
	Allocs         uint64 `json:"allocs"`
	Frees          uint64 `json:"frees"`
	Grows          uint64 `json:"grows"`
	Live           int64  `json:"live"`
	BytesLive      int64  `json:"bytes_live"`
	StateAllocated int64  `json:"state_allocated"`
	StatePublished int64  `json:"state_published"`
	MaxLive        int64  `json:"max_live"`
	MaxBytesLive   int64  `json:"max_bytes_live"`
	LiveGlobal     int    `json:"live_global"`
}

// Snapshot is a point-in-time JSON-serialisable view of a registry plus
// the default message manager's life-cycle counters.
type Snapshot struct {
	Time        time.Time                  `json:"time"`
	Core        CoreSnapshot               `json:"core"`
	Shm         ShmSnapshot                `json:"shm"`
	Egress      EgressSnapshot             `json:"egress"`
	Fieldwire   FieldwireSnapshot          `json:"fieldwire"`
	Relay       RelaySnapshot              `json:"relay"`
	Graph       GraphSnapshot              `json:"graph"`
	Publishers  map[string]PubSnapshot     `json:"publishers"`
	Subscribers map[string]SubSnapshot     `json:"subscribers"`
	Services    map[string]ServiceSnapshot `json:"services"`
}

// Snapshot captures every instrument in the registry and the default
// manager's life-cycle stats.
func (r *Registry) Snapshot() Snapshot {
	st := core.Default().Stats()
	snap := Snapshot{
		Time: time.Now(),
		Core: CoreSnapshot{
			Allocs:         st.Allocs,
			Frees:          st.Frees,
			Grows:          st.Grows,
			Live:           st.Live,
			BytesLive:      st.BytesLive,
			StateAllocated: st.StateAllocated,
			StatePublished: st.StatePublished,
			MaxLive:        st.MaxLive,
			MaxBytesLive:   st.MaxBytesLive,
			LiveGlobal:     core.LiveMessages(),
		},
		Publishers:  map[string]PubSnapshot{},
		Subscribers: map[string]SubSnapshot{},
		Services:    map[string]ServiceSnapshot{},
	}
	if r == nil {
		return snap
	}
	snap.Shm = ShmSnapshot{
		SegmentsMapped:  r.shm.SegmentsMapped.Load(),
		BytesShared:     r.shm.BytesShared.Load(),
		DescriptorSends: r.shm.DescriptorSends.Load(),
		Fallbacks:       r.shm.Fallbacks.Load(),
		FallbackReasons: ShmFallbackSnapshot{
			Oversized:     r.shm.FallbackOversized.Load(),
			HeapArena:     r.shm.FallbackHeapArena.Load(),
			PeerTableFull: r.shm.FallbackPeerTableFull.Load(),
			RemotePeer:    r.shm.FallbackRemotePeer.Load(),
			OldBuild:      r.shm.FallbackOldBuild.Load(),
		},
		Promotions:   r.shm.Promotions.Load(),
		LeasesReaped: r.shm.LeasesReaped.Load(),
	}
	snap.Egress = EgressSnapshot{
		Writes:         r.egress.Writes.Load(),
		Frames:         r.egress.Frames.Load(),
		Coalesced:      r.egress.Coalesced.Load(),
		FramesPerWrite: r.egress.FramesPerWrite.Stats(),
		BytesPerWrite:  r.egress.BytesPerWrite.Stats(),
		Fanout: FanoutSnapshot{
			ActiveShards: r.fanout.ActiveShards.Load(),
			ShardedConns: r.fanout.ShardedConns.Load(),
			Rebalances:   r.fanout.Rebalances.Load(),
			ShardDrops:   r.fanout.ShardDrops.Load(),
			Shards:       []EgressShardSnapshot{},
		},
	}
	r.eshardMu.Lock()
	eshards := append([]*EgressShardStats(nil), r.eshards...)
	r.eshardMu.Unlock()
	for _, s := range eshards {
		snap.Egress.Fanout.Shards = append(snap.Egress.Fanout.Shards, EgressShardSnapshot{
			Conns:  s.Conns.Load(),
			Frames: s.Frames.Load(),
			Writes: s.Writes.Load(),
			Bytes:  s.Bytes.Load(),
		})
	}
	snap.Fieldwire = FieldwireSnapshot{
		MaskedSubscriptions: r.fieldwire.MaskedSubscriptions.Load(),
		SparseFrames:        r.fieldwire.SparseFrames.Load(),
		FullFrames:          r.fieldwire.FullFrames.Load(),
		BytesSaved:          r.fieldwire.BytesSaved.Load(),
		MaskRejects:         r.fieldwire.MaskRejects.Load(),
		RejectReasons: FieldwireRejectSnapshot{
			NoMap:      r.fieldwire.RejectNoMap.Load(),
			Unmappable: r.fieldwire.RejectUnmappable.Load(),
			VarTail:    r.fieldwire.RejectVarTail.Load(),
		},
		DecodeErrors:  r.fieldwire.DecodeErrors.Load(),
		MaskFallbacks: r.fieldwire.MaskFallbacks.Load(),
	}
	snap.Relay = RelaySnapshot{
		Active:     r.relay.Active.Load(),
		FramesIn:   r.relay.FramesIn.Load(),
		BytesIn:    r.relay.BytesIn.Load(),
		FramesOut:  r.relay.FramesOut.Load(),
		Drops:      r.relay.Drops.Load(),
		Mismatches: r.relay.Mismatches.Load(),
	}
	snap.Graph = GraphSnapshot{
		MasterReconnects: r.graph.MasterReconnects.Load(),
		Replays:          r.graph.Replays.Load(),
		Resync:           r.graph.ResyncLatency.Stats(),
		GhostExpiries:    r.graph.GhostExpiries.Load(),
		MalformedLines:   r.graph.MalformedLines.Load(),
		Degraded:         r.graph.Degraded.Load(),
		Failovers:        r.graph.Failovers.Load(),
		FailedCandidates: r.graph.FailedCandidates.Load(),
		Epoch:            r.graph.Epoch.Load(),
	}
	if last := r.graph.ReplLastContact.Load(); last > 0 {
		if lag := (time.Now().UnixNano() - last) / int64(time.Millisecond); lag > 0 {
			snap.Graph.ReplicationLagMs = lag
		}
	}
	// Merge the stripes: each shard is copied under its own lock, so a
	// snapshot never stalls lookups on other stripes. The merged view is
	// identical to the single-map layout's — stripe assignment is an
	// implementation detail no key ever sees. The destination maps are
	// pre-sized from a cheap counting pass so no stripe's lock hold pays
	// for a rehash.
	np, ns, nv := r.stripeLens()
	pubs := make(map[string]*PubStats, np)
	subs := make(map[string]*SubStats, ns)
	svcs := make(map[string]*ServiceStats, nv)
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for k, v := range sh.pubs {
			pubs[k] = v
		}
		for k, v := range sh.subs {
			subs[k] = v
		}
		for k, v := range sh.svcs {
			svcs[k] = v
		}
		sh.mu.Unlock()
	}
	for k, v := range pubs {
		snap.Publishers[k] = PubSnapshot{
			Messages: v.Messages.Load(),
			Bytes:    v.Bytes.Load(),
			Drops:    v.Drops.Load(),
			FanOut:   v.FanOut.Load(),
			Latched:  v.Latched.Load(),
		}
	}
	for k, v := range subs {
		snap.Subscribers[k] = SubSnapshot{
			Messages:             v.Messages.Load(),
			Bytes:                v.Bytes.Load(),
			Drops:                v.Drops.Load(),
			Reconnects:           v.Reconnects.Load(),
			Corrupt:              v.Corrupt.Load(),
			Stale:                v.Stale.Load(),
			TransportUnavailable: v.TransportUnavailable.Load(),
			Latency:              v.Latency.Stats(),
		}
	}
	for k, v := range svcs {
		snap.Services[k] = ServiceSnapshot{
			Calls:   v.Calls.Load(),
			Errors:  v.Errors.Load(),
			Latency: v.Latency.Stats(),
		}
	}
	return snap
}

// ScanHolds measures, for each stripe, how long an aggregation scan
// holds that stripe's lock — the merge loop in Snapshot copies a
// stripe's instrument maps while data-plane lookups hashing to the same
// stripe wait. The largest entry bounds the stall any single lookup can
// see behind introspection; the single-lock layout this replaced held
// one lock across the whole table for the same scan. The contention
// bench (rossf-bench ingress) compares the two.
func (r *Registry) ScanHolds() []time.Duration {
	if r == nil {
		return nil
	}
	out := make([]time.Duration, 0, registryShardCount)
	np, ns, nv := r.stripeLens()
	pubs := make(map[string]*PubStats, np)
	subs := make(map[string]*SubStats, ns)
	svcs := make(map[string]*ServiceStats, nv)
	for i := range r.shards {
		sh := &r.shards[i]
		t0 := time.Now()
		sh.mu.Lock()
		for k, v := range sh.pubs {
			pubs[k] = v
		}
		for k, v := range sh.subs {
			subs[k] = v
		}
		for k, v := range sh.svcs {
			svcs[k] = v
		}
		sh.mu.Unlock()
		out = append(out, time.Since(t0))
	}
	return out
}

// stripeLens counts the instruments per class across all stripes (each
// stripe under its own brief lock) so merge destinations can be
// pre-sized before any copying hold begins.
func (r *Registry) stripeLens() (pubs, subs, svcs int) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		pubs += len(sh.pubs)
		subs += len(sh.subs)
		svcs += len(sh.svcs)
		sh.mu.Unlock()
	}
	return pubs, subs, svcs
}

// Topics returns the sorted union of topics with publisher or
// subscriber instruments (for CLI display).
func (r *Registry) Topics() []string {
	if r == nil {
		return nil
	}
	set := make(map[string]struct{})
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for k := range sh.pubs {
			set[k] = struct{}{}
		}
		for k := range sh.subs {
			set[k] = struct{}{}
		}
		sh.mu.Unlock()
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
