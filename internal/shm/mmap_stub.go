//go:build !unix

package shm

import "os"

const mmapSupported = false

func mapFile(f *os.File, size int) ([]byte, error) { return nil, ErrUnavailable }

func unmapFile(b []byte) error { return nil }

func pidAlive(pid uint32) bool { return false }
