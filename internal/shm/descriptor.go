package shm

import (
	"encoding/binary"
	"fmt"
)

// Descriptor addresses one published message inside a shared segment.
// It is what actually crosses the connection when a topic runs over the
// shm transport: 24 bytes instead of the payload. The generation makes
// descriptors self-invalidating — a slot reused after all references
// were released (or reaped) carries a new generation, so a stale
// descriptor can never alias a newer message.
type Descriptor struct {
	SegID  uint64 // segment file suffix under the store prefix
	Gen    uint64 // slot generation at share time
	Slot   uint32 // slot index within the segment
	Length uint32 // payload bytes used within the slot
}

// DescriptorSize is the encoded size of a Descriptor.
const DescriptorSize = 24

// AppendTo appends the little-endian encoding of d to dst.
func (d Descriptor) AppendTo(dst []byte) []byte {
	var b [DescriptorSize]byte
	binary.LittleEndian.PutUint64(b[0:], d.SegID)
	binary.LittleEndian.PutUint64(b[8:], d.Gen)
	binary.LittleEndian.PutUint32(b[16:], d.Slot)
	binary.LittleEndian.PutUint32(b[20:], d.Length)
	return append(dst, b[:]...)
}

// ParseDescriptor decodes a Descriptor from b.
func ParseDescriptor(b []byte) (Descriptor, error) {
	if len(b) != DescriptorSize {
		return Descriptor{}, fmt.Errorf("shm: descriptor is %d bytes, want %d", len(b), DescriptorSize)
	}
	return Descriptor{
		SegID:  binary.LittleEndian.Uint64(b[0:]),
		Gen:    binary.LittleEndian.Uint64(b[8:]),
		Slot:   binary.LittleEndian.Uint32(b[16:]),
		Length: binary.LittleEndian.Uint32(b[20:]),
	}, nil
}
