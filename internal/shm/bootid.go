package shm

import (
	"os"
	"strings"
	"sync"
)

var bootIDOnce = sync.OnceValue(func() string {
	if b, err := os.ReadFile("/proc/sys/kernel/random/boot_id"); err == nil {
		if id := strings.TrimSpace(string(b)); id != "" {
			return id
		}
	}
	// No kernel boot id (non-Linux): the hostname still distinguishes
	// machines, which is the property negotiation needs — two processes
	// may only pick shm when a descriptor minted by one is mappable by
	// the other.
	if h, err := os.Hostname(); err == nil && h != "" {
		return "host:" + h
	}
	return "unknown"
})

// BootID identifies this machine's current boot. Subscriber handshakes
// advertise it; publishers select the shm transport only when both ends
// report the same value, which rules out cross-machine connections
// (including ones tunnelled through port forwards that look local).
func BootID() string { return bootIDOnce() }
