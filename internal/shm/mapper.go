package shm

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"time"

	"rossf/internal/obs"
)

// Mapper is the subscriber side of the transport for one publisher
// connection: it lazily maps the publisher's segment files, resolves
// descriptors to the exact bytes the publisher wrote, and keeps the
// peer lease alive with a heartbeat. Resolutions pin the whole mapper —
// Close defers the heartbeat stop, the control unmap, and the data
// unmaps until every resolved message has been released, so a message
// adopted into a callback (or parked in a dispatch queue) can never see
// its lease reaped or its memory unmapped underneath it.
type Mapper struct {
	mu          sync.Mutex
	prefix      string
	peer        int
	gen         uint32 // lease generation from the handshake; 0 disables validation
	stats       *obs.ShmStats
	segs        map[uint64]*segment
	outstanding int
	closed      bool
	ctl         []byte
	stopHB      chan struct{}
	hbDone      chan struct{}
}

// NewMapper creates a mapper for the store at prefix, holding peer
// lease id peer under lease generation gen (all from the connection
// handshake; gen 0 means the publisher predates lease generations and
// disables validation). stats may be nil.
func NewMapper(prefix string, peer int, gen uint32, stats *obs.ShmStats) (*Mapper, error) {
	if !mmapSupported {
		return nil, ErrUnavailable
	}
	if peer < 0 || peer >= MaxPeers {
		return nil, fmt.Errorf("shm: peer id %d out of range", peer)
	}
	if stats == nil {
		stats = new(obs.ShmStats)
	}
	return &Mapper{
		prefix: prefix,
		peer:   peer,
		gen:    gen,
		stats:  stats,
		segs:   make(map[uint64]*segment),
	}, nil
}

// StartHeartbeat maps the publisher's control segment and begins
// refreshing this peer's heartbeat every interval. Must be called once,
// before the first Resolve deadline matters; the heartbeat runs until
// the mapper is closed AND drained, because the lease is what keeps
// outstanding resolutions' slots from being reclaimed.
func (m *Mapper) StartHeartbeat(interval time.Duration) error {
	f, err := os.OpenFile(ctlPath(m.prefix), os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if int(fi.Size()) < ctlSize() {
		return fmt.Errorf("%w: control segment truncated", ErrBadSegment)
	}
	ctl, err := mapFile(f, ctlSize())
	if err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(ctl[0:]) != ctlMagic ||
		binary.LittleEndian.Uint32(ctl[4:]) != shmVer {
		unmapFile(ctl)
		return fmt.Errorf("%w: control segment bad magic/version", ErrBadSegment)
	}
	entry := peerAt(ctl, m.peer)
	if m.gen != 0 && entry.gen.Load() != m.gen {
		unmapFile(ctl)
		return fmt.Errorf("shm: peer %d lease lost before heartbeat start", m.peer)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.ctl != nil {
		unmapFile(ctl)
		return fmt.Errorf("shm: heartbeat already started or mapper closed")
	}
	m.ctl = ctl
	m.stopHB = make(chan struct{})
	m.hbDone = make(chan struct{})
	entry.heartbeat.Store(time.Now().UnixNano())
	// Captured locally: finish nils the fields under m.mu while this
	// goroutine runs.
	stop, done := m.stopHB, m.hbDone
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				// A changed generation means our lease was reaped and the
				// entry may belong to a new subscriber: stop writing into
				// it rather than spuriously keeping someone else's lease
				// fresh.
				if m.gen != 0 && entry.gen.Load() != m.gen {
					return
				}
				entry.heartbeat.Store(time.Now().UnixNano())
			}
		}
	}()
	return nil
}

// leaseHeldLocked reports whether this mapper's peer lease is still the
// one the publisher issued it. With no control mapping or no lease
// generation (direct test construction, old-build publisher) there is
// nothing to check and the lease is assumed held.
func (m *Mapper) leaseHeldLocked() bool {
	if m.ctl == nil || m.gen == 0 {
		return true
	}
	return peerAt(m.ctl, m.peer).gen.Load() == m.gen
}

// Resolve maps a descriptor to its payload bytes and returns a release
// function that must be called exactly once when the subscriber is done
// with the message (internal/ros wires it into the adopted message's
// destructor). A generation mismatch — the slot was recycled, or this
// peer's lease was reaped — fails with an error wrapping
// core.ErrStaleGeneration.
func (m *Mapper) Resolve(d Descriptor) ([]byte, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, nil, ErrClosed
	}
	if !m.leaseHeldLocked() {
		return nil, nil, ErrStale
	}
	seg := m.segs[d.SegID]
	if seg == nil {
		var err error
		seg, err = openSegment(segPath(m.prefix, d.SegID), d.SegID)
		if err != nil {
			return nil, nil, err
		}
		m.segs[d.SegID] = seg
		m.stats.SegmentsMapped.Add(1)
		m.stats.BytesShared.Add(int64(seg.size()))
	}
	// Length is bounded by the slot STRIDE, not the slot class: a
	// message that grew in place carries a length beyond slotSize, and
	// the stride-wide window is mapped (sparsely) on this side too.
	if int(d.Slot) >= seg.slotCount || int(d.Length) > seg.stride {
		return nil, nil, fmt.Errorf("%w: descriptor out of bounds (slot %d, len %d)", ErrBadSegment, d.Slot, d.Length)
	}
	st := seg.slot(int(d.Slot))
	bit := uint32(1) << uint(m.peer)
	// Generation and ownership must both check out: a cleared owner bit
	// means the publisher's reaper already took back this reference
	// (lease expired), so the bytes may be recycled at any moment.
	if st.gen.Load() != d.Gen || st.owner.Load()&bit == 0 {
		return nil, nil, ErrStale
	}
	m.outstanding++
	mem := seg.dataSpan(int(d.Slot), int(d.Length))
	var once sync.Once
	release := func() {
		once.Do(func() {
			m.mu.Lock()
			// If the lease was reaped while this resolution was held, the
			// reaper already returned the reference — and the peer id may
			// have been re-leased, in which case the slot bit now counts
			// for the new subscriber and must not be touched.
			if m.leaseHeldLocked() {
				releaseShared(st, m.peer)
			}
			m.outstanding--
			done := m.closed && m.outstanding == 0
			m.mu.Unlock()
			if done {
				m.finish()
			}
		})
	}
	return mem, release, nil
}

// Outstanding reports resolutions not yet released (test visibility).
func (m *Mapper) Outstanding() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.outstanding
}

// Close marks the mapper done. If no resolutions are outstanding the
// mapper tears down immediately; otherwise the heartbeat, the control
// mapping, and the data mappings all stay alive until the last resolved
// message is released — a subscriber must heartbeat for as long as it
// may hold slot references, or the publisher's reaper would recycle
// slots still being read.
func (m *Mapper) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	drained := m.outstanding == 0
	m.mu.Unlock()
	if drained {
		m.finish()
	}
}

// finish tears the mapper down once it is closed and drained: stop the
// heartbeat, publish the drained sentinel so the publisher's reaper can
// free the peer entry immediately, then unmap everything. Called
// exactly once, by whichever of Close / the last release observed
// closed && outstanding == 0.
func (m *Mapper) finish() {
	m.mu.Lock()
	stop, hbDone := m.stopHB, m.hbDone
	ctl := m.ctl
	m.ctl, m.stopHB, m.hbDone = nil, nil, nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-hbDone
		// Only stamp the sentinel while the lease is still ours — after a
		// reap the entry may already belong to a new subscriber.
		if entry := peerAt(ctl, m.peer); m.gen == 0 || entry.gen.Load() == m.gen {
			entry.heartbeat.Store(hbDrained)
		}
	}
	unmapFile(ctl)
	m.unmapAll()
}

// unmapAll releases every data-segment mapping. Called only after
// close with zero outstanding resolutions.
func (m *Mapper) unmapAll() {
	m.mu.Lock()
	segs := m.segs
	m.segs = make(map[uint64]*segment)
	m.mu.Unlock()
	for _, seg := range segs {
		m.stats.SegmentsMapped.Add(-1)
		m.stats.BytesShared.Add(-int64(seg.size()))
		seg.close(false)
	}
}
