package shm

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"time"

	"rossf/internal/obs"
)

// Mapper is the subscriber side of the transport for one publisher
// connection: it lazily maps the publisher's segment files, resolves
// descriptors to the exact bytes the publisher wrote, and keeps the
// peer lease alive with a heartbeat. Resolutions pin their segment
// mapping — Close defers the munmap until every resolved message has
// been released, so a message adopted into a callback can never see
// its memory unmapped underneath it.
type Mapper struct {
	mu          sync.Mutex
	prefix      string
	peer        int
	stats       *obs.ShmStats
	segs        map[uint64]*segment
	outstanding int
	closed      bool
	ctl         []byte
	stopHB      chan struct{}
	hbDone      chan struct{}
}

// NewMapper creates a mapper for the store at prefix, holding peer
// lease id peer (both from the connection handshake). stats may be nil.
func NewMapper(prefix string, peer int, stats *obs.ShmStats) (*Mapper, error) {
	if !mmapSupported {
		return nil, ErrUnavailable
	}
	if peer < 0 || peer >= MaxPeers {
		return nil, fmt.Errorf("shm: peer id %d out of range", peer)
	}
	if stats == nil {
		stats = new(obs.ShmStats)
	}
	return &Mapper{
		prefix: prefix,
		peer:   peer,
		stats:  stats,
		segs:   make(map[uint64]*segment),
	}, nil
}

// StartHeartbeat maps the publisher's control segment and begins
// refreshing this peer's heartbeat every interval. Must be called once,
// before the first Resolve deadline matters; stopped by Close.
func (m *Mapper) StartHeartbeat(interval time.Duration) error {
	f, err := os.OpenFile(ctlPath(m.prefix), os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if int(fi.Size()) < ctlSize() {
		return fmt.Errorf("%w: control segment truncated", ErrBadSegment)
	}
	ctl, err := mapFile(f, ctlSize())
	if err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(ctl[0:]) != ctlMagic ||
		binary.LittleEndian.Uint32(ctl[4:]) != shmVer {
		unmapFile(ctl)
		return fmt.Errorf("%w: control segment bad magic/version", ErrBadSegment)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.ctl != nil {
		unmapFile(ctl)
		return fmt.Errorf("shm: heartbeat already started or mapper closed")
	}
	m.ctl = ctl
	m.stopHB = make(chan struct{})
	m.hbDone = make(chan struct{})
	entry := peerAt(ctl, m.peer)
	entry.heartbeat.Store(time.Now().UnixNano())
	go func() {
		defer close(m.hbDone)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-m.stopHB:
				return
			case <-tick.C:
				entry.heartbeat.Store(time.Now().UnixNano())
			}
		}
	}()
	return nil
}

// Resolve maps a descriptor to its payload bytes and returns a release
// function that must be called exactly once when the subscriber is done
// with the message (internal/ros wires it into the adopted message's
// destructor). A generation mismatch — the slot was recycled, or this
// peer's lease was reaped — fails with an error wrapping
// core.ErrStaleGeneration.
func (m *Mapper) Resolve(d Descriptor) ([]byte, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, nil, ErrClosed
	}
	seg := m.segs[d.SegID]
	if seg == nil {
		var err error
		seg, err = openSegment(segPath(m.prefix, d.SegID), d.SegID)
		if err != nil {
			return nil, nil, err
		}
		m.segs[d.SegID] = seg
		m.stats.SegmentsMapped.Add(1)
		m.stats.BytesShared.Add(int64(seg.size()))
	}
	if int(d.Slot) >= seg.slotCount || int(d.Length) > seg.slotSize {
		return nil, nil, fmt.Errorf("%w: descriptor out of bounds (slot %d, len %d)", ErrBadSegment, d.Slot, d.Length)
	}
	st := seg.slot(int(d.Slot))
	bit := uint32(1) << uint(m.peer)
	// Generation and ownership must both check out: a cleared owner bit
	// means the publisher's reaper already took back this reference
	// (lease expired), so the bytes may be recycled at any moment.
	if st.gen.Load() != d.Gen || st.owner.Load()&bit == 0 {
		return nil, nil, ErrStale
	}
	m.outstanding++
	mem := seg.data(int(d.Slot))[:d.Length]
	var once sync.Once
	release := func() {
		once.Do(func() {
			releaseShared(st, m.peer)
			m.mu.Lock()
			m.outstanding--
			done := m.closed && m.outstanding == 0
			m.mu.Unlock()
			if done {
				m.unmapAll()
			}
		})
	}
	return mem, release, nil
}

// Outstanding reports resolutions not yet released (test visibility).
func (m *Mapper) Outstanding() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.outstanding
}

// Close stops the heartbeat and unmaps the control segment. Data
// segments are unmapped once the last outstanding resolution is
// released; until then their mappings (and the publisher's view of the
// references) stay valid.
func (m *Mapper) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	stop, done := m.stopHB, m.hbDone
	ctl := m.ctl
	m.ctl = nil
	drained := m.outstanding == 0
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	unmapFile(ctl)
	if drained {
		m.unmapAll()
	}
}

// unmapAll releases every data-segment mapping. Called only after
// close with zero outstanding resolutions.
func (m *Mapper) unmapAll() {
	m.mu.Lock()
	segs := m.segs
	m.segs = make(map[uint64]*segment)
	m.mu.Unlock()
	for _, seg := range segs {
		m.stats.SegmentsMapped.Add(-1)
		m.stats.BytesShared.Add(-int64(seg.size()))
		seg.close(false)
	}
}
