//go:build !linux

package shm

import "os"

// punchHole is a no-op off Linux: recycled growth headroom stays
// resident until the segment is unlinked. Correctness is unaffected —
// the next slot occupant overwrites what it uses.
func punchHole(f *os.File, off, n int) {}

// DirBytesFree reports 0 (unknown) off Linux; callers treat 0 as "no
// capacity information" and skip their guard.
func DirBytesFree(dir string) uint64 { return 0 }
