package shm

import (
	"bytes"
	"math/rand"
	"os"
	"testing"
	"time"
	"unsafe"

	"rossf/internal/core"
	"rossf/internal/obs"
)

// skipUnlessFree skips the test when the filesystem backing dir
// verifiably lacks `need` free bytes (0 means unknown — proceed).
func skipUnlessFree(t *testing.T, dir string, need uint64) {
	t.Helper()
	if free := DirBytesFree(dir); free > 0 && free < need {
		t.Skipf("only %d bytes free under %s, need %d", free, dir, need)
	}
}

func TestStrideFor(t *testing.T) {
	cases := []struct{ slotSize, want int }{
		{minSlotSize, minSlotSize * slotGrowth},
		{1 << 20, 1 << 20 * slotGrowth},
		// The top pooled class keeps real headroom into large-object
		// territory: 16 × 64 MiB = 1 GiB, still under the cap.
		{maxSlotSize, maxSlotSize * slotGrowth},
	}
	for _, c := range cases {
		got := strideFor(c.slotSize)
		if got != c.want {
			t.Errorf("strideFor(%d) = %d, want %d", c.slotSize, got, c.want)
		}
		if got < c.slotSize || got > maxLargeBytes {
			t.Errorf("strideFor(%d) = %d out of [slotSize, maxLargeBytes]", c.slotSize, got)
		}
	}
}

// TestLargeObjectRoundTrip drives a >64 MiB message through the full
// descriptor path: large-object Acquire, Share, mapper Resolve — the
// subscriber must see the publisher's exact bytes with zero copies, and
// releasing everything must reuse (not leak) the dedicated segment.
func TestLargeObjectRoundTrip(t *testing.T) {
	const size = 80 << 20 // above maxSlotSize: forced onto the large path
	dir := t.TempDir()
	skipUnlessFree(t, dir, 4*size)
	var stats obs.ShmStats
	s := testStore(t, Options{Dir: dir, Stats: &stats})

	raw, h, ok := s.Acquire(size)
	if !ok {
		t.Fatal("Acquire declined a large-object capacity")
	}
	if len(raw) < size {
		t.Fatalf("large grant short: %d < %d", len(raw), size)
	}
	// Stamp scattered pages rather than all 80 MiB: the extent is sparse,
	// and the stamps prove the mapping is shared, not copied.
	marks := []int{0, pageSize - 1, size / 3, size / 2, size - 1}
	for i, off := range marks {
		raw[off] = byte(0xc0 + i)
	}
	peer, gen, err := s.AcquirePeer(1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Share(h, peer, gen, size)
	if err != nil {
		t.Fatalf("Share of a large slot: %v", err)
	}
	m, err := NewMapper(s.Prefix(), peer, gen, &stats)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	mem, release, err := m.Resolve(d)
	if err != nil {
		t.Fatalf("Resolve of a large descriptor: %v", err)
	}
	if len(mem) != size {
		t.Fatalf("resolved %d bytes, want %d", len(mem), size)
	}
	for i, off := range marks {
		if mem[off] != byte(0xc0+i) {
			t.Fatalf("byte %d = %#x, want %#x", off, mem[off], 0xc0+i)
		}
	}
	// Shared, not copied: the publisher's write after Share is visible.
	raw[size/4] = 0x77
	if mem[size/4] != 0x77 {
		t.Fatal("subscriber mapping does not alias the publisher's segment")
	}
	release()
	s.Release(h, raw)
	if !s.Idle() {
		t.Fatal("store not idle after all releases")
	}

	// The idle segment is cached: the next large acquire of a fitting
	// capacity reuses it (same handle, bumped generation).
	raw2, h2, ok := s.Acquire(70 << 20)
	if !ok {
		t.Fatal("second large Acquire declined")
	}
	if h2 != h {
		t.Fatalf("idle large segment not reused: %#x then %#x", h, h2)
	}
	s.Release(h2, raw2)
	if stats.Fallbacks.Load() != 0 {
		t.Fatalf("fallbacks = %d on the large path", stats.Fallbacks.Load())
	}
}

// TestLargeSegmentTrim: only largeCacheSegs idle large segments stay
// mapped for reuse; the rest are unlinked as their last reference drops,
// so a burst of point clouds does not pin its high-water mark forever.
func TestLargeSegmentTrim(t *testing.T) {
	const n = 4
	dir := t.TempDir()
	s := testStore(t, Options{Dir: dir})
	type alloc struct {
		raw []byte
		h   uint64
	}
	var live []alloc
	for i := 0; i < n; i++ {
		// All concurrently live, so each lands in its own segment. The
		// extents are sparse — nothing is written — so this is cheap even
		// though every one is >64 MiB.
		raw, h, ok := s.Acquire(maxSlotSize + 1)
		if !ok {
			t.Fatalf("Acquire %d declined", i)
		}
		live = append(live, alloc{raw, h})
	}
	segFiles := func() int {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for _, e := range ents {
			if !e.IsDir() && bytes.Contains([]byte(e.Name()), []byte("-seg")) {
				count++
			}
		}
		return count
	}
	if got := segFiles(); got != n {
		t.Fatalf("%d segment files while %d large messages live", got, n)
	}
	for _, a := range live {
		s.Release(a.h, a.raw)
	}
	if got := segFiles(); got != largeCacheSegs {
		t.Fatalf("%d segment files after release, want the %d-segment reuse cache", got, largeCacheSegs)
	}
	s.mu.Lock()
	mapped := 0
	for _, seg := range s.segs {
		if seg != nil {
			mapped++
		}
	}
	s.mu.Unlock()
	if mapped != largeCacheSegs {
		t.Fatalf("%d segments still mapped, want %d", mapped, largeCacheSegs)
	}
}

// TestGrowArenaWithinStride is the unit view of cross-class growth: a
// slot extends in place up to its stride reservation, the grown window
// is shareable at its full length, and one byte past the stride is
// refused rather than relocated.
func TestGrowArenaWithinStride(t *testing.T) {
	s := testStore(t, Options{})
	raw, h, ok := s.Acquire(minSlotSize)
	if !ok {
		t.Fatal("Acquire declined")
	}
	stride := minSlotSize * slotGrowth
	base := &raw[0]
	grown, ok := s.GrowArena(h, stride)
	if !ok {
		t.Fatal("GrowArena declined a grow within the stride")
	}
	if len(grown) != stride {
		t.Fatalf("grown window = %d, want %d", len(grown), stride)
	}
	if &grown[0] != base {
		t.Fatal("GrowArena moved the arena")
	}
	if _, ok := s.GrowArena(h, stride+1); ok {
		t.Fatal("GrowArena accepted a grow past the stride reservation")
	}
	grown[stride-1] = 0x5a
	peer, gen, err := s.AcquirePeer(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Share(h, peer, gen, stride+1); err == nil {
		t.Fatal("Share accepted a length beyond the granted window")
	}
	d, err := s.Share(h, peer, gen, stride)
	if err != nil {
		t.Fatalf("Share at the grown length: %v", err)
	}
	m, err := NewMapper(s.Prefix(), peer, gen, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	mem, release, err := m.Resolve(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(mem) != stride || mem[stride-1] != 0x5a {
		t.Fatalf("resolved grown slot: len=%d last=%#x", len(mem), mem[len(mem)-1])
	}
	release()
	s.Release(h, raw)
	if !s.Idle() {
		t.Fatal("store not idle")
	}
}

// grownMsg exercises several independently grown fields, so random op
// orders produce varied arena layouts.
type grownMsg struct {
	A core.Vector[uint8]
	S core.String
	B core.Vector[uint64]
	T core.String
	C core.Vector[uint8]
}

// TestResizeAcrossClassesProperty is the resize-migration property test:
// the SAME random sequence of grows applied to a store-backed message
// (smallest slot class, so most sequences cross classes) and to a
// roomy heap-arena shadow must produce byte-for-byte identical wire
// bytes — in-place tier migration is invisible to the format. Run under
// -race via the repo's race target.
func TestResizeAcrossClassesProperty(t *testing.T) {
	s := testStore(t, Options{})
	mgr := core.NewManager()
	mgr.SetBackingStore(s)
	heap := core.NewManager()

	rng := rand.New(rand.NewSource(7))
	alpha := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
	for trial := 0; trial < 30; trial++ {
		shmMsg, err := core.NewIn[grownMsg](mgr, minSlotSize)
		if err != nil {
			t.Fatal(err)
		}
		shadow, err := core.NewIn[grownMsg](heap, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		base := uintptr(unsafe.Pointer(shmMsg))

		// One op per field (resizes are one-shot), random order, sizes
		// chosen so the total stays inside the slot's stride but usually
		// far outside its 4 KiB class.
		ops := []func() error{
			func() error {
				n := 1 + rng.Intn(30000)
				if err := shmMsg.A.Resize(n); err != nil {
					return err
				}
				if err := shadow.A.Resize(n); err != nil {
					return err
				}
				rng.Read(shmMsg.A.Slice())
				copy(shadow.A.Slice(), shmMsg.A.Slice())
				return nil
			},
			func() error {
				v := alpha(1 + rng.Intn(60))
				if err := shmMsg.S.Set(v); err != nil {
					return err
				}
				return shadow.S.Set(v)
			},
			func() error {
				n := 1 + rng.Intn(2000)
				if err := shmMsg.B.Resize(n); err != nil {
					return err
				}
				if err := shadow.B.Resize(n); err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					x := rng.Uint64()
					*shmMsg.B.At(i) = x
					*shadow.B.At(i) = x
				}
				return nil
			},
			func() error {
				v := alpha(1 + rng.Intn(60))
				if err := shmMsg.T.Set(v); err != nil {
					return err
				}
				return shadow.T.Set(v)
			},
			func() error {
				n := 1 + rng.Intn(10000)
				if err := shmMsg.C.Resize(n); err != nil {
					return err
				}
				if err := shadow.C.Resize(n); err != nil {
					return err
				}
				rng.Read(shmMsg.C.Slice())
				copy(shadow.C.Slice(), shmMsg.C.Slice())
				return nil
			},
		}
		rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
		for i, op := range ops {
			if err := op(); err != nil {
				t.Fatalf("trial %d op %d: %v", trial, i, err)
			}
			if got := uintptr(unsafe.Pointer(shmMsg)); got != base {
				t.Fatalf("trial %d op %d: arena moved %#x -> %#x", trial, i, base, got)
			}
		}
		wire, err := core.Bytes(shmMsg)
		if err != nil {
			t.Fatal(err)
		}
		shadowWire, err := core.Bytes(shadow)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, shadowWire) {
			t.Fatalf("trial %d: store-backed wire bytes (%d) differ from heap shadow (%d)",
				trial, len(wire), len(shadowWire))
		}
		if _, err := core.Release(shmMsg); err != nil {
			t.Fatal(err)
		}
		if _, err := core.Release(shadow); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Idle() {
		t.Fatal("store not idle after all trials")
	}
}

// TestCloseDefersUnlinkUntilLeaseDrains: Close with a subscriber still
// holding a resolved large message must NOT unlink the segment under
// its reader. The mapping stays valid, the files stay on disk, and the
// janitor finishes the teardown — signaled by TeardownDone — only after
// the last lease drains.
func TestCloseDefersUnlinkUntilLeaseDrains(t *testing.T) {
	dir := t.TempDir()
	skipUnlessFree(t, dir, 1<<28)
	if !Available() {
		t.Skip("shared-memory transport unavailable on this platform")
	}
	s, err := NewStore(Options{Dir: dir, LeaseTimeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// No testStore cleanup here: Close IS the scenario.
	const size = maxSlotSize + 1 // large path: unlink-deferral matters most there
	raw, h, ok := s.Acquire(size)
	if !ok {
		t.Fatal("Acquire declined")
	}
	payload := bytes.Repeat([]byte{0xd1}, pageSize)
	copy(raw, payload)
	peer, gen, err := s.AcquirePeer(uint32(os.Getpid()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Share(h, peer, gen, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMapper(s.Prefix(), peer, gen, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StartHeartbeat(16 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	mem, release, err := m.Resolve(d)
	if err != nil {
		t.Fatal(err)
	}
	// The publisher is done with the message; only the subscriber's
	// lease still pins the slot.
	s.Release(h, raw)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.TeardownDone():
		t.Fatal("teardown completed while a subscriber lease held the segment")
	case <-time.After(300 * time.Millisecond): // several janitor ticks
	}
	segFile := segPath(s.Prefix(), uint64(h>>32))
	if _, err := os.Stat(segFile); err != nil {
		t.Fatalf("segment file unlinked under a live reader: %v", err)
	}
	if !bytes.Equal(mem[:len(payload)], payload) {
		t.Fatal("mapped bytes changed after deferred Close")
	}
	// Drain: the release returns the slot reference, the mapper's Close
	// publishes the drained sentinel, and the janitor reaps + tears down.
	release()
	m.Close()
	select {
	case <-s.TeardownDone():
	case <-time.After(5 * time.Second):
		t.Fatal("teardown never completed after the last lease drained")
	}
	if _, err := os.Stat(segFile); !os.IsNotExist(err) {
		t.Fatalf("segment file still present after teardown: %v", err)
	}
	if _, err := os.Stat(ctlPath(s.Prefix())); !os.IsNotExist(err) {
		t.Fatalf("control file still present after teardown: %v", err)
	}
}
