//go:build unix

package shm

import (
	"os"
	"syscall"
)

const mmapSupported = true

// mapFile maps size bytes of f shared and writable. Mappings are
// writable on both sides: subscribers update reference counts and
// heartbeats in place, which is the whole point of the transport.
func mapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func unmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
