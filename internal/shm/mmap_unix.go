//go:build unix

package shm

import (
	"errors"
	"os"
	"syscall"
)

const mmapSupported = true

// mapFile maps size bytes of f shared and writable. Mappings are
// writable on both sides: subscribers update reference counts and
// heartbeats in place, which is the whole point of the transport.
func mapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func unmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}

// pidAlive probes whether a process with the given pid exists: signal 0
// delivers nothing but still runs the kernel's existence check. EPERM
// means the process exists but belongs to someone else — alive. A pid
// of 0 (a peer that never sent one in the handshake) is unverifiable
// and reported dead, so the reaper falls back to age-based
// reclamation for it.
func pidAlive(pid uint32) bool {
	if pid == 0 {
		return false
	}
	err := syscall.Kill(int(pid), 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}
