//go:build linux

package shm

import (
	"os"
	"syscall"
)

// FALLOC_FL_* flags for fallocate(2); the pair deallocates a file range
// while keeping the apparent size, so sparse segment extents stay
// sparse after a grown slot is recycled.
const (
	fallocKeepSize  = 0x01
	fallocPunchHole = 0x02
)

// punchHole returns the pages of f in [off, off+n) to the OS while
// keeping the file's apparent size; subsequent reads (from any mapping)
// see zeros. Best-effort: an unsupported filesystem just keeps the
// pages resident, which costs memory but never correctness.
func punchHole(f *os.File, off, n int) {
	if f == nil || n <= 0 {
		return
	}
	_ = syscall.Fallocate(int(f.Fd()), fallocPunchHole|fallocKeepSize, int64(off), int64(n))
}

// DirBytesFree reports the free bytes of the filesystem backing dir, or
// 0 when unknown. Benchmarks and large-payload tests use it as a
// skip-guard so a small /dev/shm degrades to a skip, not a SIGBUS.
func DirBytesFree(dir string) uint64 {
	var st syscall.Statfs_t
	if err := syscall.Statfs(dir, &st); err != nil {
		return 0
	}
	return uint64(st.Bavail) * uint64(st.Bsize)
}
