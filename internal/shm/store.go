package shm

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"rossf/internal/obs"
)

// Control file layout (`<prefix>.ctl`): the publisher's peer lease
// table, mapped by every shm subscriber of this process.
//
//	offset 0        64-byte header
//	  +0  u32  magic "RSHC"
//	  +4  u32  version
//	  +8  u32  publisher pid
//	  +16 u64  creation time, unix nanos
//	offset 64       MaxPeers × 64-byte peer entries
//	  +0  u32  state     — atomic: free / active / draining
//	  +4  u32  subscriber pid
//	  +8  i64  heartbeat — atomic unix nanos, stored by the subscriber
//	  +16 u32  gen       — atomic lease generation, bumped by AcquirePeer
//
// A subscriber refreshes its heartbeat for as long as it may still hold
// slot references, and stores the hbDrained sentinel once the last one
// is released. The reaper frees an entry — clearing the peer's owner
// bit from every slot, releasing the reference iff the bit was still
// set — when it sees the sentinel, or when the heartbeat is older than
// the lease timeout AND the subscriber is provably gone: for an ACTIVE
// peer a stale heartbeat alone may just mean a stalled process
// (SIGSTOP, swap storm, debugger), so the pid is probed first; a
// DRAINING peer already lost its connection and keeps heartbeating
// until drained, so age alone suffices there. The lease generation
// closes the remaining ABA: every lease of a peer id gets a fresh gen,
// Share/Unshare and the mapper's heartbeat/Resolve/release all validate
// it, so a reaped-and-reused peer id rejects stale writers instead of
// corrupting the new lease's reference counts.
type peerSlot struct {
	state     atomic.Uint32
	pid       uint32
	heartbeat atomic.Int64
	gen       atomic.Uint32
	_         [peerEntry - 20]byte
}

func ctlSize() int { return alignUp(hdrBytes+MaxPeers*peerEntry, pageSize) }

func peerAt(ctl []byte, p int) *peerSlot {
	return (*peerSlot)(unsafe.Pointer(&ctl[hdrBytes+p*peerEntry]))
}

func segPath(prefix string, id uint64) string { return fmt.Sprintf("%s-seg%d", prefix, id) }
func ctlPath(prefix string) string            { return prefix + ".ctl" }

// DefaultLeaseTimeout is how long a silent subscriber keeps its slot
// references before the publisher reclaims them.
const DefaultLeaseTimeout = 2 * time.Second

// Options configures a Store.
type Options struct {
	// Dir overrides the segment directory (default Dir()).
	Dir string
	// LeaseTimeout overrides DefaultLeaseTimeout.
	LeaseTimeout time.Duration
	// Stats receives transport instruments (default: none).
	Stats *obs.ShmStats
}

// Store is the publisher side of the transport: it owns the segment
// files, implements core.BackingStore (and core.ArenaGrower, for
// in-place cross-class resizes) so message allocations land in shared
// slots, tracks per-subscriber leases, and reaps references abandoned
// by crashed subscribers. All methods are safe for concurrent use.
//
// Entries of segs may be nil: a trimmed large-object segment, or a
// segment already torn down during a deferred Close, leaves a tombstone
// so handle and descriptor segment ids stay stable.
type Store struct {
	mu      sync.Mutex
	prefix  string
	ctl     []byte
	segs    []*segment
	lease   time.Duration
	stats   *obs.ShmStats
	closed  bool
	stop    chan struct{}
	done    chan struct{}
	td      chan struct{} // closed when the final teardown has run
	shareSq uint64        // descriptor sends, for tests
}

// NewStore creates a segment store under opts.Dir and starts its lease
// reaper. The caller must Close it once every store-backed message has
// been released; segments still pinned by live subscriber leases at
// Close time are torn down later, when their last lease drains (see
// Close and TeardownDone).
func NewStore(opts Options) (*Store, error) {
	if !mmapSupported {
		return nil, ErrUnavailable
	}
	dir := opts.Dir
	if dir == "" {
		if dir = Dir(); dir == "" {
			return nil, ErrUnavailable
		}
	}
	lease := opts.LeaseTimeout
	if lease <= 0 {
		lease = DefaultLeaseTimeout
	}
	stats := opts.Stats
	if stats == nil {
		stats = new(obs.ShmStats)
	}
	s := &Store{
		lease: lease,
		stats: stats,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		td:    make(chan struct{}),
	}
	// The O_EXCL create of the control file claims the prefix.
	for attempt := 0; ; attempt++ {
		prefix := fmt.Sprintf("%s%crossf-%d-%d", dir, os.PathSeparator, os.Getpid(), attempt)
		f, err := os.OpenFile(ctlPath(prefix), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
		if os.IsExist(err) && attempt < 1024 {
			continue
		}
		if err != nil {
			return nil, err
		}
		mapErr := f.Truncate(int64(ctlSize()))
		if mapErr == nil {
			s.ctl, mapErr = mapFile(f, ctlSize())
		}
		f.Close()
		if s.ctl == nil {
			os.Remove(ctlPath(prefix))
			return nil, fmt.Errorf("shm: mapping control segment: %w", mapErr)
		}
		s.prefix = prefix
		break
	}
	binary.LittleEndian.PutUint32(s.ctl[0:], ctlMagic)
	binary.LittleEndian.PutUint32(s.ctl[4:], shmVer)
	binary.LittleEndian.PutUint32(s.ctl[8:], uint32(os.Getpid()))
	binary.LittleEndian.PutUint64(s.ctl[16:], uint64(time.Now().UnixNano()))
	go s.reapLoop()
	return s, nil
}

// Prefix returns the path prefix subscribers use to locate this store's
// segment and control files (sent in the connection handshake).
func (s *Store) Prefix() string { return s.prefix }

// LeaseTimeout returns the store's lease timeout (sent in the
// handshake so subscribers heartbeat well inside it).
func (s *Store) LeaseTimeout() time.Duration { return s.lease }

// handle packs a segment index and slot index.
func handleFor(segIdx, slot int) uint64 { return uint64(segIdx)<<32 | uint64(uint32(slot)) }

// lookup resolves a handle. Caller holds s.mu.
func (s *Store) lookup(handle uint64) (*segment, int, bool) {
	segIdx, slot := int(handle>>32), int(uint32(handle))
	if segIdx >= len(s.segs) {
		return nil, 0, false
	}
	seg := s.segs[segIdx]
	if seg == nil || slot >= seg.slotCount {
		return nil, 0, false
	}
	return seg, slot, true
}

// Acquire implements core.BackingStore: it claims a free slot (reusing
// one whose references have all dropped, else growing a new segment)
// and returns its page-aligned data window. Capacities above the
// largest pooled class get a dedicated single-slot large-object
// segment, so images and point clouds ride the descriptor path like
// everything else. The only declines left — capacity above
// MaxMessageBytes, store closed, segment creation failure — make the
// manager fall back to its process-local heap, which at the transport
// level means the message travels inline over TCP framing.
func (s *Store) Acquire(capacity int) ([]byte, uint64, bool) {
	if capacity > maxSlotSize {
		return s.acquireLarge(capacity)
	}
	slotSize := slotSizeFor(capacity)
	if slotSize == 0 {
		return nil, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, false
	}
	for segIdx, seg := range s.segs {
		if seg == nil || seg.large || seg.slotSize != slotSize {
			continue
		}
		for i := 0; i < seg.slotCount; i++ {
			st := seg.slot(i)
			// owner==0 then refs==0 is a stable "fully released" state:
			// references only reach zero after the last owner bit is
			// cleared, and no new references appear without this lock.
			if st.owner.Load() == 0 && st.refs.Load() == 0 {
				s.claimLocked(seg, i, slotSize)
				return seg.data(i), handleFor(segIdx, i), true
			}
		}
	}
	slotCount := targetSegBytes / slotSize
	if slotCount < minSlots {
		slotCount = minSlots
	}
	if slotCount > maxSlots {
		slotCount = maxSlots
	}
	id := uint64(len(s.segs))
	seg, err := createSegment(segPath(s.prefix, id), id, slotSize, slotCount,
		strideFor(slotSize), time.Now().UnixNano())
	if err != nil {
		return nil, 0, false
	}
	s.segs = append(s.segs, seg)
	s.stats.SegmentsMapped.Add(1)
	s.stats.BytesShared.Add(int64(seg.size()))
	s.claimLocked(seg, 0, slotSize)
	return seg.data(0), handleFor(int(id), 0), true
}

// acquireLarge serves a capacity above the pooled classes from a
// dedicated single-slot segment: reuse the tightest idle large segment
// whose stride fits, else create one whose stride reserves doubling
// headroom over the rounded capacity (sparse, so the reservation is
// free until grown into).
func (s *Store) acquireLarge(capacity int) ([]byte, uint64, bool) {
	if capacity > maxLargeBytes {
		return nil, 0, false
	}
	grant := alignUp(capacity, pageSize)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, false
	}
	best := -1
	for segIdx, seg := range s.segs {
		if seg == nil || !seg.large || seg.stride < grant {
			continue
		}
		st := seg.slot(0)
		if st.owner.Load() != 0 || st.refs.Load() != 0 {
			continue
		}
		if best < 0 || seg.stride < s.segs[best].stride {
			best = segIdx
		}
	}
	if best >= 0 {
		seg := s.segs[best]
		s.claimLocked(seg, 0, grant)
		return seg.dataSpan(0, grant), handleFor(best, 0), true
	}
	stride := pageSize
	for stride < grant {
		stride <<= 1
	}
	if stride <= maxLargeBytes/2 {
		stride <<= 1
	}
	id := uint64(len(s.segs))
	seg, err := createSegment(segPath(s.prefix, id), id, grant, 1, stride, time.Now().UnixNano())
	if err != nil {
		return nil, 0, false
	}
	s.segs = append(s.segs, seg)
	s.stats.SegmentsMapped.Add(1)
	s.stats.BytesShared.Add(int64(seg.size()))
	s.claimLocked(seg, 0, grant)
	return seg.dataSpan(0, grant), handleFor(int(id), 0), true
}

// claimLocked initializes a slot for a new message: next generation
// (invalidating any stale descriptor), publisher baseline reference, no
// peer owners, and a granted window of grant bytes. Pages the previous
// occupant grew beyond the new grant are punched back to the OS so
// sparse stride headroom does not accumulate physically.
func (s *Store) claimLocked(seg *segment, slot, grant int) {
	if grant < seg.grown[slot] {
		seg.punchSlack(slot, grant)
	} else {
		seg.grown[slot] = grant
	}
	st := seg.slot(slot)
	st.gen.Add(1)
	st.owner.Store(0)
	st.refs.Store(1)
	seg.setUsed(slot, 0)
}

// GrowArena implements core.ArenaGrower: extend handle's granted data
// window in place, within the slot's stride reservation. The returned
// slice starts at the same address as the original Acquire — the
// address-stability contract the core index relies on — and no syscall
// or remap is involved, because the whole strided extent is mapped (and
// the file truncated to it) at segment creation. ok=false when the
// stride is exhausted; the caller's grow then fails loudly instead of
// silently relocating.
func (s *Store) GrowArena(handle uint64, need int) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	seg, slot, ok := s.lookup(handle)
	if !ok || need <= 0 || need > seg.stride {
		return nil, false
	}
	grant := seg.grown[slot]
	for grant < need {
		grant <<= 1
	}
	if grant > seg.stride {
		grant = seg.stride
	}
	if grant > seg.grown[slot] {
		seg.grown[slot] = grant
	}
	return seg.dataSpan(slot, seg.grown[slot]), true
}

// Release implements core.BackingStore: the manager destructed the
// message, dropping the publisher's baseline reference. Peers still
// reading the slot keep it pinned through their own references. A
// large-object release also trims the idle large-segment cache.
func (s *Store) Release(handle uint64, raw []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seg, slot, ok := s.lookup(handle)
	if !ok {
		return
	}
	seg.slot(slot).refs.Add(-1)
	if seg.large {
		s.trimLargeLocked()
	}
}

// trimLargeLocked unlinks idle large-object segments beyond the small
// reuse cache, oldest first. Unlink-while-mapped is safe: a subscriber
// that already mapped the file keeps its pages until its own unmap, and
// no valid descriptor can reference an idle slot (idle means no owner
// bits, hence no outstanding shares).
func (s *Store) trimLargeLocked() {
	var idle []int
	for segIdx, seg := range s.segs {
		if seg == nil || !seg.large {
			continue
		}
		st := seg.slot(0)
		if st.owner.Load() == 0 && st.refs.Load() == 0 {
			idle = append(idle, segIdx)
		}
	}
	for len(idle) > largeCacheSegs {
		idx := idle[0]
		idle = idle[1:]
		seg := s.segs[idx]
		s.stats.SegmentsMapped.Add(-1)
		s.stats.BytesShared.Add(-int64(seg.size()))
		seg.close(true)
		s.segs[idx] = nil
	}
}

// Share grants peer a reference to the message in handle's slot and
// returns the descriptor to send. gen is the lease generation returned
// by AcquirePeer: a mismatch means the lease was reaped (and the peer
// id possibly re-issued) since the caller's handshake, so no reference
// is minted. length is the payload size actually used; it may exceed
// the slot class when the message grew in place, up to the granted
// window. The caller must still hold the message (publisher baseline
// alive), which guarantees the slot cannot be recycled concurrently.
func (s *Store) Share(handle uint64, peer int, gen uint32, length int) (Descriptor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Descriptor{}, ErrClosed
	}
	seg, slot, ok := s.lookup(handle)
	if !ok || peer < 0 || peer >= MaxPeers {
		return Descriptor{}, fmt.Errorf("shm: share: bad handle %#x / peer %d", handle, peer)
	}
	if e := peerAt(s.ctl, peer); e.state.Load() != peerActive || e.gen.Load() != gen {
		return Descriptor{}, fmt.Errorf("shm: share: peer %d lease lost", peer)
	}
	if length < 0 || length > seg.grown[slot] {
		return Descriptor{}, fmt.Errorf("shm: share: length %d exceeds granted window %d", length, seg.grown[slot])
	}
	st := seg.slot(slot)
	bit := uint32(1) << uint(peer)
	if st.owner.Load()&bit == 0 {
		st.refs.Add(1)
		st.owner.Or(bit)
	}
	seg.setUsed(slot, length)
	s.shareSq++
	s.stats.DescriptorSends.Inc()
	return Descriptor{SegID: seg.id, Gen: st.gen.Load(), Slot: uint32(slot), Length: uint32(length)}, nil
}

// Unshare returns peer's reference on handle's slot without the
// descriptor ever reaching the subscriber — the undo path for frames
// dropped from a full send queue. gen must be the lease generation the
// reference was minted under: if the lease has been reaped since, the
// reaper already returned the reference (and the peer id may belong to
// a new subscriber), so the release is skipped.
func (s *Store) Unshare(handle uint64, peer int, gen uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seg, slot, ok := s.lookup(handle); ok && peer >= 0 && peer < MaxPeers &&
		peerAt(s.ctl, peer).gen.Load() == gen {
		releaseShared(seg.slot(slot), peer)
	}
}

// AcquirePeer leases a peer id to a subscriber with the given pid and
// returns the id plus the lease generation. The lease starts with a
// fresh heartbeat; the subscriber keeps it fresh via
// Mapper.StartHeartbeat. The generation is always nonzero (zero means
// "no validation" to mappers talking to builds without it) and changes
// on every lease of the same id, so references minted under a reaped
// lease can never be mistaken for the new occupant's.
func (s *Store) AcquirePeer(pid uint32) (int, uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0, ErrClosed
	}
	for p := 0; p < MaxPeers; p++ {
		e := peerAt(s.ctl, p)
		if e.state.Load() == peerFree {
			gen := e.gen.Add(1)
			if gen == 0 {
				gen = e.gen.Add(1)
			}
			e.pid = pid
			e.heartbeat.Store(time.Now().UnixNano())
			e.state.Store(peerActive)
			return p, gen, nil
		}
	}
	return 0, 0, ErrNoPeerSlot
}

// RetirePeer marks a peer draining: the connection is gone, but the
// subscriber process may still be releasing references from callbacks
// in flight. The reaper collects the entry — and any references the
// subscriber never returned — once its heartbeat goes stale.
func (s *Store) RetirePeer(peer int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if peer >= 0 && peer < MaxPeers {
		e := peerAt(s.ctl, peer)
		if e.state.Load() == peerActive {
			e.state.Store(peerDraining)
		}
	}
}

// reapLoop periodically reclaims peers whose heartbeat exceeded the
// lease timeout. It stops at Close; a deferred teardown continues
// reaping from the janitor instead, because draining the last lease is
// exactly what unblocks the teardown.
func (s *Store) reapLoop() {
	defer close(s.done)
	tick := time.NewTicker(s.lease / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.mu.Lock()
			if !s.closed {
				s.reapPeersLocked(time.Now().UnixNano())
			}
			s.mu.Unlock()
		}
	}
}

// reapPeersLocked frees peer entries whose lease is decidably over and
// returns every slot reference they still held. Caller holds s.mu.
func (s *Store) reapPeersLocked(now int64) {
	for p := 0; p < MaxPeers; p++ {
		e := peerAt(s.ctl, p)
		state := e.state.Load()
		if state == peerFree {
			continue
		}
		if hb := e.heartbeat.Load(); hb != hbDrained {
			if now-hb <= s.lease.Nanoseconds() {
				continue
			}
			// A stale heartbeat alone does not prove an ACTIVE subscriber
			// is gone — it may just be stalled (SIGSTOP, swap, a long GC
			// pause). Reclaiming references it still reads would recycle
			// slots under it and hand its peer id to someone else, so an
			// active peer is reaped only once its process no longer
			// exists. Draining peers have lost their connection and keep
			// heartbeating until their last release (then store the
			// drained sentinel), so age alone is decisive for them.
			if state == peerActive && pidAlive(e.pid) {
				continue
			}
		}
		for _, seg := range s.segs {
			if seg == nil {
				continue
			}
			for i := 0; i < seg.slotCount; i++ {
				releaseShared(seg.slot(i), p)
			}
		}
		e.pid = 0
		e.state.Store(peerFree)
		s.stats.LeasesReaped.Inc()
	}
}

// SlotRefs reports (refs, owner) for a handle — test and debug
// visibility into the cross-process life cycle.
func (s *Store) SlotRefs(handle uint64) (int32, uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seg, slot, ok := s.lookup(handle); ok {
		st := seg.slot(slot)
		return st.refs.Load(), st.owner.Load()
	}
	return 0, 0
}

// Idle reports whether every slot in every segment is fully released —
// the shm analogue of obs.CheckLeaks' "no live messages" baseline.
func (s *Store) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segs {
		if seg == nil {
			continue
		}
		if segBusy(seg) {
			return false
		}
	}
	return true
}

// segBusy reports whether any slot still carries references or owner
// bits — i.e. the segment's memory may still be read by someone.
func segBusy(seg *segment) bool {
	for i := 0; i < seg.slotCount; i++ {
		st := seg.slot(i)
		if st.refs.Load() != 0 || st.owner.Load() != 0 {
			return true
		}
	}
	return false
}

// Shares returns the total number of successful Share calls.
func (s *Store) Shares() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shareSq
}

// TeardownDone returns a channel closed once the store's final teardown
// has run: every segment unmapped and unlinked, control file removed.
// With no busy segments at Close this happens inside Close; otherwise a
// janitor finishes the job when the last subscriber lease drains.
func (s *Store) TeardownDone() <-chan struct{} { return s.td }

// Close stops the reaper and tears the store down. Segments whose every
// slot is fully released are unmapped and unlinked immediately. A
// segment still pinned — typically a subscriber holding a resolved
// message, or a crashed subscriber whose lease has not yet expired — is
// NOT unlinked out from under its readers: a janitor keeps the mapping
// (and keeps reaping stale leases, which is what eventually drains a
// dead subscriber's references) and finishes the teardown when the last
// reference goes. TeardownDone signals that point. Store-backed
// messages owned by THIS process must have been released before Close.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
	s.mu.Lock()
	done := s.teardownLocked()
	s.mu.Unlock()
	if !done {
		go s.janitor()
	}
	return nil
}

// teardownLocked unlinks every drained segment and, once none remain
// busy, unmaps the control table, removes its file, and closes td.
// Caller holds s.mu; reports whether teardown completed.
func (s *Store) teardownLocked() bool {
	busy := false
	for idx, seg := range s.segs {
		if seg == nil {
			continue
		}
		if segBusy(seg) {
			busy = true
			continue
		}
		s.stats.SegmentsMapped.Add(-1)
		s.stats.BytesShared.Add(-int64(seg.size()))
		seg.close(true)
		s.segs[idx] = nil
	}
	if busy {
		return false
	}
	s.segs = nil
	if s.ctl != nil {
		unmapFile(s.ctl)
		s.ctl = nil
		os.Remove(ctlPath(s.prefix))
	}
	close(s.td)
	return true
}

// janitor finishes a deferred teardown: keep reaping stale leases (the
// reapLoop has already exited) and retry the teardown until the last
// busy segment drains.
func (s *Store) janitor() {
	tick := time.NewTicker(s.lease / 4)
	defer tick.Stop()
	for range tick.C {
		s.mu.Lock()
		s.reapPeersLocked(time.Now().UnixNano())
		done := s.teardownLocked()
		s.mu.Unlock()
		if done {
			return
		}
	}
}
