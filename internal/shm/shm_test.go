package shm

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"rossf/internal/core"
	"rossf/internal/obs"
)

func testStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if !Available() {
		t.Skip("shared-memory transport unavailable on this platform")
	}
	if opts.Dir == "" {
		opts.Dir = t.TempDir() // exercised layout, isolated from /dev/shm
	}
	s, err := NewStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestDescriptorRoundTrip(t *testing.T) {
	d := Descriptor{SegID: 7, Gen: 1 << 40, Slot: 511, Length: 1 << 20}
	got, err := ParseDescriptor(d.AppendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("round trip %+v != %+v", got, d)
	}
	if _, err := ParseDescriptor(make([]byte, DescriptorSize-1)); err == nil {
		t.Fatal("short descriptor accepted")
	}
}

func TestSlotSizeFor(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, minSlotSize}, {1, minSlotSize}, {minSlotSize, minSlotSize},
		{minSlotSize + 1, minSlotSize << 1}, {maxSlotSize, maxSlotSize}, {maxSlotSize + 1, 0},
	}
	for _, c := range cases {
		if got := slotSizeFor(c.in); got != c.want {
			t.Errorf("slotSizeFor(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestAcquireReuseGeneration pins the slot life cycle: a fully released
// slot is reused rather than growing the segment, and reuse bumps the
// generation so descriptors minted for the old occupant go stale.
func TestAcquireReuseGeneration(t *testing.T) {
	s := testStore(t, Options{})
	raw1, h1, ok := s.Acquire(100)
	if !ok {
		t.Fatal("Acquire declined")
	}
	if len(raw1) < 100 {
		t.Fatalf("short slot: %d", len(raw1))
	}
	seg, slot, _ := s.lookup(h1)
	gen1 := seg.slot(slot).gen.Load()
	s.Release(h1, raw1)
	raw2, h2, ok := s.Acquire(100)
	if !ok {
		t.Fatal("second Acquire declined")
	}
	if h2 != h1 {
		t.Fatalf("released slot not reused: %#x then %#x", h1, h2)
	}
	if gen2 := seg.slot(slot).gen.Load(); gen2 == gen1 {
		t.Fatal("slot reuse did not bump generation")
	}
	s.Release(h2, raw2)
	if !s.Idle() {
		t.Fatal("store not idle after full release")
	}
	if _, _, ok := s.Acquire(maxSlotSize + 1); ok {
		t.Fatal("Acquire accepted capacity above the largest slot class")
	}
}

// TestShareResolveRoundTrip drives the full descriptor path inside one
// process: publisher writes into a slot, shares it with a peer, the
// mapper resolves the descriptor to the same bytes, and releases bring
// the slot back to fully-free.
func TestShareResolveRoundTrip(t *testing.T) {
	var stats obs.ShmStats
	s := testStore(t, Options{Stats: &stats})
	peer, err := s.AcquirePeer(1234)
	if err != nil {
		t.Fatal(err)
	}
	raw, h, ok := s.Acquire(4096)
	if !ok {
		t.Fatal("Acquire declined")
	}
	payload := bytes.Repeat([]byte("rossf"), 100)
	copy(raw, payload)
	d, err := s.Share(h, peer, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if refs, owner := s.SlotRefs(h); refs != 2 || owner != 1<<uint(peer) {
		t.Fatalf("after share: refs=%d owner=%#x", refs, owner)
	}

	m, err := NewMapper(s.Prefix(), peer, &stats)
	if err != nil {
		t.Fatal(err)
	}
	mem, release, err := m.Resolve(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mem, payload) {
		t.Fatal("resolved bytes differ from published bytes")
	}
	release()
	release() // must be idempotent
	if refs, owner := s.SlotRefs(h); refs != 1 || owner != 0 {
		t.Fatalf("after subscriber release: refs=%d owner=%#x", refs, owner)
	}
	s.Release(h, raw)
	if !s.Idle() {
		t.Fatal("store not idle after all releases")
	}
	m.Close()
	if stats.DescriptorSends.Load() != 1 {
		t.Fatalf("descriptor_sends = %d, want 1", stats.DescriptorSends.Load())
	}
	if stats.SegmentsMapped.Load() != 1 { // store's own segment still mapped
		t.Fatalf("segments_mapped = %d, want 1 after mapper close", stats.SegmentsMapped.Load())
	}
}

// TestStaleDescriptorRejected is the cross-process ABA guard: once a
// slot is recycled for a new message, a descriptor for the old occupant
// must fail with core.ErrStaleGeneration, never alias the new bytes.
func TestStaleDescriptorRejected(t *testing.T) {
	s := testStore(t, Options{})
	peer, err := s.AcquirePeer(1)
	if err != nil {
		t.Fatal(err)
	}
	raw, h, _ := s.Acquire(4096)
	d, err := s.Share(h, peer, 64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMapper(s.Prefix(), peer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Release everything and recycle the slot for a new message.
	s.Unshare(h, peer)
	s.Release(h, raw)
	if _, h2, ok := s.Acquire(4096); !ok || h2 != h {
		t.Fatalf("expected slot reuse, got ok=%v h2=%#x", ok, h2)
	}
	if _, _, err := m.Resolve(d); !errors.Is(err, core.ErrStaleGeneration) {
		t.Fatalf("stale descriptor resolved: err=%v", err)
	}
}

// TestLeaseReap kills the subscriber implicitly — no heartbeat ever
// runs — and verifies the reaper returns its references and frees the
// peer entry within the lease timeout.
func TestLeaseReap(t *testing.T) {
	var stats obs.ShmStats
	s := testStore(t, Options{LeaseTimeout: 80 * time.Millisecond, Stats: &stats})
	peer, err := s.AcquirePeer(99)
	if err != nil {
		t.Fatal(err)
	}
	raw, h, _ := s.Acquire(4096)
	if _, err := s.Share(h, peer, 16); err != nil {
		t.Fatal(err)
	}
	s.RetirePeer(peer)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if refs, owner := s.SlotRefs(h); refs == 1 && owner == 0 {
			break
		}
		if time.Now().After(deadline) {
			refs, owner := s.SlotRefs(h)
			t.Fatalf("lease never reaped: refs=%d owner=%#x", refs, owner)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if stats.LeasesReaped.Load() == 0 {
		t.Fatal("leases_reaped not incremented")
	}
	s.Release(h, raw)
	if !s.Idle() {
		t.Fatal("store not idle after reap + release")
	}
	// The freed entry must be reusable.
	if _, err := s.AcquirePeer(100); err != nil {
		t.Fatalf("peer slot not recycled: %v", err)
	}
}

// TestHeartbeatKeepsLeaseAlive is the counterpart: a live subscriber
// heartbeating inside the lease interval is never reaped, even while
// idle far longer than the timeout.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	s := testStore(t, Options{LeaseTimeout: 80 * time.Millisecond})
	peer, err := s.AcquirePeer(7)
	if err != nil {
		t.Fatal(err)
	}
	raw, h, _ := s.Acquire(4096)
	if _, err := s.Share(h, peer, 16); err != nil {
		t.Fatal(err)
	}
	m, err := NewMapper(s.Prefix(), peer, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StartHeartbeat(16 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond) // 5× the lease timeout
	if refs, owner := s.SlotRefs(h); refs != 2 || owner == 0 {
		t.Fatalf("live lease reaped: refs=%d owner=%#x", refs, owner)
	}
	m.Close() // heartbeat stops; reaper may now collect
	s.Unshare(h, peer)
	s.Release(h, raw)
}

// TestManagerIntegration plugs a Store into a core.Manager: New lands
// the message in a shared slot, SharedHandleOf exposes the handle, and
// a mapper-resolved external buffer adopts into an identical message —
// the zero-copy path the ros layer is built on.
func TestManagerIntegration(t *testing.T) {
	type msg struct {
		A uint32
		B uint64
	}
	s := testStore(t, Options{})
	mgr := core.NewManager()
	mgr.SetBackingStore(s)

	p, err := core.NewIn[msg](mgr, 4096)
	if err != nil {
		t.Fatal(err)
	}
	p.A, p.B = 0xdeadbeef, 1<<40
	h, used, ok := core.SharedHandleOf(p, s)
	if !ok {
		t.Fatal("store-backed message has no shared handle")
	}
	if _, _, ok := core.SharedHandleOf(p, nil); ok {
		t.Fatal("handle resolved against the wrong store")
	}
	peer, err := s.AcquirePeer(1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Share(h, peer, used)
	if err != nil {
		t.Fatal(err)
	}

	m, err := NewMapper(s.Prefix(), peer, nil)
	if err != nil {
		t.Fatal(err)
	}
	mem, release, err := m.Resolve(d)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := mgr.NewExternalBuffer(mem, release)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.Adopt[msg](buf, used)
	if err != nil {
		t.Fatal(err)
	}
	if q.A != p.A || q.B != p.B {
		t.Fatalf("adopted message differs: %+v vs %+v", *q, *p)
	}
	if _, err := core.Release(q); err != nil { // frees mapper reference
		t.Fatal(err)
	}
	if _, err := core.Release(p); err != nil { // frees publisher baseline via BackingStore.Release
		t.Fatal(err)
	}
	if !s.Idle() {
		t.Fatal("store not idle after both releases")
	}
	m.Close()
	if m.Outstanding() != 0 {
		t.Fatal("outstanding resolutions after release")
	}
}
