package shm

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"testing"
	"time"

	"rossf/internal/core"
	"rossf/internal/obs"
)

// deadPID returns the pid of a process that has already exited, for
// leases whose "subscriber" must look crashed to the reaper's liveness
// probe.
func deadPID(t *testing.T) uint32 {
	t.Helper()
	cmd := exec.Command("true")
	if err := cmd.Run(); err != nil {
		t.Skipf("cannot spawn helper process: %v", err)
	}
	return uint32(cmd.Process.Pid)
}

// waitSlot polls until handle's slot reaches (refs, owner) or fails the
// test after two seconds.
func waitSlot(t *testing.T, s *Store, h uint64, refs int32, owner uint32, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		r, o := s.SlotRefs(h)
		if r == refs && o == owner {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: refs=%d owner=%#x, want refs=%d owner=%#x", what, r, o, refs, owner)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func testStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if !Available() {
		t.Skip("shared-memory transport unavailable on this platform")
	}
	if opts.Dir == "" {
		opts.Dir = t.TempDir() // exercised layout, isolated from /dev/shm
	}
	s, err := NewStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestDescriptorRoundTrip(t *testing.T) {
	d := Descriptor{SegID: 7, Gen: 1 << 40, Slot: 511, Length: 1 << 20}
	got, err := ParseDescriptor(d.AppendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("round trip %+v != %+v", got, d)
	}
	if _, err := ParseDescriptor(make([]byte, DescriptorSize-1)); err == nil {
		t.Fatal("short descriptor accepted")
	}
}

func TestSlotSizeFor(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, minSlotSize}, {1, minSlotSize}, {minSlotSize, minSlotSize},
		{minSlotSize + 1, minSlotSize << 1}, {maxSlotSize, maxSlotSize}, {maxSlotSize + 1, 0},
	}
	for _, c := range cases {
		if got := slotSizeFor(c.in); got != c.want {
			t.Errorf("slotSizeFor(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestAcquireReuseGeneration pins the slot life cycle: a fully released
// slot is reused rather than growing the segment, and reuse bumps the
// generation so descriptors minted for the old occupant go stale.
func TestAcquireReuseGeneration(t *testing.T) {
	s := testStore(t, Options{})
	raw1, h1, ok := s.Acquire(100)
	if !ok {
		t.Fatal("Acquire declined")
	}
	if len(raw1) < 100 {
		t.Fatalf("short slot: %d", len(raw1))
	}
	seg, slot, _ := s.lookup(h1)
	gen1 := seg.slot(slot).gen.Load()
	s.Release(h1, raw1)
	raw2, h2, ok := s.Acquire(100)
	if !ok {
		t.Fatal("second Acquire declined")
	}
	if h2 != h1 {
		t.Fatalf("released slot not reused: %#x then %#x", h1, h2)
	}
	if gen2 := seg.slot(slot).gen.Load(); gen2 == gen1 {
		t.Fatal("slot reuse did not bump generation")
	}
	s.Release(h2, raw2)
	if !s.Idle() {
		t.Fatal("store not idle after full release")
	}
	// Above the pooled classes the store no longer declines: the request
	// lands in a dedicated large-object segment instead of silently
	// dropping the message to the heap (and the topic to TCP).
	rawL, hL, ok := s.Acquire(maxSlotSize + 1)
	if !ok {
		t.Fatal("Acquire declined capacity above the largest slot class")
	}
	if len(rawL) < maxSlotSize+1 {
		t.Fatalf("large slot short: %d", len(rawL))
	}
	if segL, _, ok := s.lookup(hL); !ok || !segL.large {
		t.Fatalf("capacity above the pooled classes not served by a large segment")
	}
	s.Release(hL, rawL)
	if _, _, ok := s.Acquire(maxLargeBytes + 1); ok {
		t.Fatal("Acquire accepted capacity above MaxMessageBytes")
	}
}

// TestShareResolveRoundTrip drives the full descriptor path inside one
// process: publisher writes into a slot, shares it with a peer, the
// mapper resolves the descriptor to the same bytes, and releases bring
// the slot back to fully-free.
func TestShareResolveRoundTrip(t *testing.T) {
	var stats obs.ShmStats
	s := testStore(t, Options{Stats: &stats})
	peer, gen, err := s.AcquirePeer(1234)
	if err != nil {
		t.Fatal(err)
	}
	raw, h, ok := s.Acquire(4096)
	if !ok {
		t.Fatal("Acquire declined")
	}
	payload := bytes.Repeat([]byte("rossf"), 100)
	copy(raw, payload)
	d, err := s.Share(h, peer, gen, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if refs, owner := s.SlotRefs(h); refs != 2 || owner != 1<<uint(peer) {
		t.Fatalf("after share: refs=%d owner=%#x", refs, owner)
	}

	m, err := NewMapper(s.Prefix(), peer, gen, &stats)
	if err != nil {
		t.Fatal(err)
	}
	mem, release, err := m.Resolve(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mem, payload) {
		t.Fatal("resolved bytes differ from published bytes")
	}
	release()
	release() // must be idempotent
	if refs, owner := s.SlotRefs(h); refs != 1 || owner != 0 {
		t.Fatalf("after subscriber release: refs=%d owner=%#x", refs, owner)
	}
	s.Release(h, raw)
	if !s.Idle() {
		t.Fatal("store not idle after all releases")
	}
	m.Close()
	if stats.DescriptorSends.Load() != 1 {
		t.Fatalf("descriptor_sends = %d, want 1", stats.DescriptorSends.Load())
	}
	if stats.SegmentsMapped.Load() != 1 { // store's own segment still mapped
		t.Fatalf("segments_mapped = %d, want 1 after mapper close", stats.SegmentsMapped.Load())
	}
}

// TestStaleDescriptorRejected is the cross-process ABA guard: once a
// slot is recycled for a new message, a descriptor for the old occupant
// must fail with core.ErrStaleGeneration, never alias the new bytes.
func TestStaleDescriptorRejected(t *testing.T) {
	s := testStore(t, Options{})
	peer, gen, err := s.AcquirePeer(1)
	if err != nil {
		t.Fatal(err)
	}
	raw, h, _ := s.Acquire(4096)
	d, err := s.Share(h, peer, gen, 64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMapper(s.Prefix(), peer, gen, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Release everything and recycle the slot for a new message.
	s.Unshare(h, peer, gen)
	s.Release(h, raw)
	if _, h2, ok := s.Acquire(4096); !ok || h2 != h {
		t.Fatalf("expected slot reuse, got ok=%v h2=%#x", ok, h2)
	}
	if _, _, err := m.Resolve(d); !errors.Is(err, core.ErrStaleGeneration) {
		t.Fatalf("stale descriptor resolved: err=%v", err)
	}
}

// TestLeaseReap kills the subscriber implicitly — no heartbeat ever
// runs — and verifies the reaper returns its references and frees the
// peer entry within the lease timeout.
func TestLeaseReap(t *testing.T) {
	var stats obs.ShmStats
	s := testStore(t, Options{LeaseTimeout: 80 * time.Millisecond, Stats: &stats})
	peer, gen, err := s.AcquirePeer(99)
	if err != nil {
		t.Fatal(err)
	}
	raw, h, _ := s.Acquire(4096)
	if _, err := s.Share(h, peer, gen, 16); err != nil {
		t.Fatal(err)
	}
	s.RetirePeer(peer)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if refs, owner := s.SlotRefs(h); refs == 1 && owner == 0 {
			break
		}
		if time.Now().After(deadline) {
			refs, owner := s.SlotRefs(h)
			t.Fatalf("lease never reaped: refs=%d owner=%#x", refs, owner)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if stats.LeasesReaped.Load() == 0 {
		t.Fatal("leases_reaped not incremented")
	}
	s.Release(h, raw)
	if !s.Idle() {
		t.Fatal("store not idle after reap + release")
	}
	// The freed entry must be reusable.
	if _, _, err := s.AcquirePeer(100); err != nil {
		t.Fatalf("peer slot not recycled: %v", err)
	}
}

// TestHeartbeatKeepsLeaseAlive is the counterpart: a live subscriber
// heartbeating inside the lease interval is never reaped, even while
// idle far longer than the timeout.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	s := testStore(t, Options{LeaseTimeout: 80 * time.Millisecond})
	peer, gen, err := s.AcquirePeer(7)
	if err != nil {
		t.Fatal(err)
	}
	raw, h, _ := s.Acquire(4096)
	if _, err := s.Share(h, peer, gen, 16); err != nil {
		t.Fatal(err)
	}
	m, err := NewMapper(s.Prefix(), peer, gen, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StartHeartbeat(16 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond) // 5× the lease timeout
	if refs, owner := s.SlotRefs(h); refs != 2 || owner == 0 {
		t.Fatalf("live lease reaped: refs=%d owner=%#x", refs, owner)
	}
	m.Close() // heartbeat stops; reaper may now collect
	s.Unshare(h, peer, gen)
	s.Release(h, raw)
}

// TestCloseDefersLeaseTeardown pins the async-dispatch fix: Close with
// a resolution still outstanding (a message parked in a dispatch queue
// after the frame pump exited) must keep the heartbeat — and therefore
// the lease and the slot references — alive until the last release.
// The lease pid is a dead process, so if Close stopped the heartbeat
// early the reaper would immediately reclaim the peer.
func TestCloseDefersLeaseTeardown(t *testing.T) {
	var stats obs.ShmStats
	s := testStore(t, Options{LeaseTimeout: 80 * time.Millisecond, Stats: &stats})
	peer, gen, err := s.AcquirePeer(deadPID(t))
	if err != nil {
		t.Fatal(err)
	}
	raw, h, ok := s.Acquire(4096)
	if !ok {
		t.Fatal("Acquire declined")
	}
	payload := bytes.Repeat([]byte{0xab}, 64)
	copy(raw, payload)
	d, err := s.Share(h, peer, gen, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMapper(s.Prefix(), peer, gen, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StartHeartbeat(16 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	mem, release, err := m.Resolve(d)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()                          // a callback still holds mem: teardown must wait
	time.Sleep(400 * time.Millisecond) // 5× the lease timeout
	if refs, owner := s.SlotRefs(h); refs != 2 || owner != 1<<uint(peer) {
		t.Fatalf("lease reaped while a resolution was outstanding: refs=%d owner=%#x", refs, owner)
	}
	if !bytes.Equal(mem, payload) {
		t.Fatal("mapped bytes changed while a resolution was outstanding")
	}
	release()
	if n := m.Outstanding(); n != 0 {
		t.Fatalf("outstanding = %d after release", n)
	}
	// The release itself returned the slot reference; the drained
	// sentinel lets the reaper free the peer entry on its next tick
	// instead of waiting out the lease (the pid probe would otherwise
	// defer it forever for a live process, and here the pid is dead but
	// the entry was fresh moments ago).
	waitSlot(t, s, h, 1, 0, "slot reference not returned after drain")
	deadline := time.Now().Add(2 * time.Second)
	for stats.LeasesReaped.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("drained peer entry never reaped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Release(h, raw)
	if !s.Idle() {
		t.Fatal("store not idle after all releases")
	}
}

// TestReapSparesLiveStalledPeer: a subscriber whose heartbeat went
// stale but whose process is alive (SIGSTOP, swap, long GC) must NOT be
// reaped while its lease is active — its references are still in use.
// Once the publisher retires the peer (connection gone), age-based
// reaping applies again.
func TestReapSparesLiveStalledPeer(t *testing.T) {
	var stats obs.ShmStats
	s := testStore(t, Options{LeaseTimeout: 60 * time.Millisecond, Stats: &stats})
	peer, gen, err := s.AcquirePeer(uint32(os.Getpid())) // this very-much-alive process
	if err != nil {
		t.Fatal(err)
	}
	raw, h, ok := s.Acquire(4096)
	if !ok {
		t.Fatal("Acquire declined")
	}
	if _, err := s.Share(h, peer, gen, 16); err != nil {
		t.Fatal(err)
	}
	// No heartbeat ever runs: the lease is stale almost immediately.
	time.Sleep(300 * time.Millisecond) // 5× the lease timeout
	if refs, owner := s.SlotRefs(h); refs != 2 || owner != 1<<uint(peer) {
		t.Fatalf("live stalled peer reaped: refs=%d owner=%#x", refs, owner)
	}
	if n := stats.LeasesReaped.Load(); n != 0 {
		t.Fatalf("leases_reaped = %d for a live peer", n)
	}
	s.RetirePeer(peer)
	waitSlot(t, s, h, 1, 0, "retired stale peer not reaped")
	s.Release(h, raw)
	if !s.Idle() {
		t.Fatal("store not idle after reap + release")
	}
}

// TestReapActiveDeadProcess: an ACTIVE lease whose process has exited
// (SIGKILL before the connection teardown could retire it) is reaped on
// heartbeat age once the pid probe confirms the process is gone.
func TestReapActiveDeadProcess(t *testing.T) {
	s := testStore(t, Options{LeaseTimeout: 60 * time.Millisecond})
	peer, gen, err := s.AcquirePeer(deadPID(t))
	if err != nil {
		t.Fatal(err)
	}
	raw, h, ok := s.Acquire(4096)
	if !ok {
		t.Fatal("Acquire declined")
	}
	if _, err := s.Share(h, peer, gen, 16); err != nil {
		t.Fatal(err)
	}
	// No RetirePeer: the entry stays active, as after a crash whose
	// connection teardown raced the reaper.
	waitSlot(t, s, h, 1, 0, "dead active peer not reaped")
	s.Release(h, raw)
	if !s.Idle() {
		t.Fatal("store not idle after reap + release")
	}
}

// TestLeaseGenerationGuardsReusedPeer reconstructs the reap/re-lease
// ABA: a stalled subscriber's peer id is reclaimed and re-leased to a
// new subscriber while the old one still holds a resolution. The old
// mapper must neither resolve further descriptors nor — critically —
// decrement the new lease's references on its late release, and the
// publisher must refuse Shares minted against the old generation.
func TestLeaseGenerationGuardsReusedPeer(t *testing.T) {
	s := testStore(t, Options{LeaseTimeout: 60 * time.Millisecond})
	peer1, gen1, err := s.AcquirePeer(deadPID(t))
	if err != nil {
		t.Fatal(err)
	}
	raw, h, ok := s.Acquire(4096)
	if !ok {
		t.Fatal("Acquire declined")
	}
	d, err := s.Share(h, peer1, gen1, 16)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMapper(s.Prefix(), peer1, gen1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One beat, then silence: the interval is far longer than the lease,
	// so the heartbeat goes stale while the resolution is outstanding —
	// the "subscriber stalled past its lease" scenario (and the pid is
	// dead, so the reaper acts on it).
	if err := m.StartHeartbeat(time.Hour); err != nil {
		t.Fatal(err)
	}
	_, release, err := m.Resolve(d)
	if err != nil {
		t.Fatal(err)
	}
	waitSlot(t, s, h, 1, 0, "stalled dead peer not reaped")
	// The freed id goes to a new subscriber under a new generation.
	peer2, gen2, err := s.AcquirePeer(uint32(os.Getpid()))
	if err != nil {
		t.Fatal(err)
	}
	if peer2 != peer1 {
		t.Fatalf("expected peer id reuse, got %d then %d", peer1, peer2)
	}
	if gen2 == gen1 {
		t.Fatal("lease generation not bumped on reuse")
	}
	if _, err := s.Share(h, peer2, gen2, 16); err != nil {
		t.Fatal(err)
	}
	// A Share against the reaped generation is refused.
	if _, err := s.Share(h, peer1, gen1, 16); err == nil {
		t.Fatal("Share accepted a reaped lease generation")
	}
	// The stale mapper can no longer resolve: its lease is gone.
	if _, _, err := m.Resolve(d); !errors.Is(err, core.ErrStaleGeneration) {
		t.Fatalf("stale-lease resolve: err=%v, want ErrStaleGeneration", err)
	}
	// Its late release of the pre-reap resolution must not steal the new
	// lease's reference.
	release()
	if refs, owner := s.SlotRefs(h); refs != 2 || owner != 1<<uint(peer2) {
		t.Fatalf("stale release corrupted the re-leased peer: refs=%d owner=%#x", refs, owner)
	}
	m.Close()
	s.Unshare(h, peer2, gen2)
	s.Release(h, raw)
	if !s.Idle() {
		t.Fatal("store not idle after all releases")
	}
}

// TestManagerIntegration plugs a Store into a core.Manager: New lands
// the message in a shared slot, SharedHandleOf exposes the handle, and
// a mapper-resolved external buffer adopts into an identical message —
// the zero-copy path the ros layer is built on.
func TestManagerIntegration(t *testing.T) {
	type msg struct {
		A uint32
		B uint64
	}
	s := testStore(t, Options{})
	mgr := core.NewManager()
	mgr.SetBackingStore(s)

	p, err := core.NewIn[msg](mgr, 4096)
	if err != nil {
		t.Fatal(err)
	}
	p.A, p.B = 0xdeadbeef, 1<<40
	h, used, ok := core.SharedHandleOf(p, s)
	if !ok {
		t.Fatal("store-backed message has no shared handle")
	}
	if _, _, ok := core.SharedHandleOf(p, nil); ok {
		t.Fatal("handle resolved against the wrong store")
	}
	peer, gen, err := s.AcquirePeer(1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Share(h, peer, gen, used)
	if err != nil {
		t.Fatal(err)
	}

	m, err := NewMapper(s.Prefix(), peer, gen, nil)
	if err != nil {
		t.Fatal(err)
	}
	mem, release, err := m.Resolve(d)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := mgr.NewExternalBuffer(mem, release)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.Adopt[msg](buf, used)
	if err != nil {
		t.Fatal(err)
	}
	if q.A != p.A || q.B != p.B {
		t.Fatalf("adopted message differs: %+v vs %+v", *q, *p)
	}
	if _, err := core.Release(q); err != nil { // frees mapper reference
		t.Fatal(err)
	}
	if _, err := core.Release(p); err != nil { // frees publisher baseline via BackingStore.Release
		t.Fatal(err)
	}
	if !s.Idle() {
		t.Fatal("store not idle after both releases")
	}
	m.Close()
	if m.Outstanding() != 0 {
		t.Fatal("outstanding resolutions after release")
	}
}
