// Package shm is the shared-memory inter-process transport: mmap-backed
// arena segments created by a publisher, reference-counted across
// process boundaries, and addressed by tiny descriptors carried over the
// existing TCPROS-style connection.
//
// The split of responsibilities mirrors the paper's transparency goal:
//
//   - Store (publisher side) implements core.BackingStore, so ordinary
//     core.New[T] allocations land directly in a shared segment — field
//     writes ARE cross-process-visible wire bytes, and publishing a
//     message to a same-machine subscriber costs a 24-byte descriptor
//     instead of a payload copy.
//   - Mapper (subscriber side) resolves descriptors to mapped memory and
//     hands the bytes to core.Adopt, so the callback sees the exact
//     arena the publisher wrote — zero payload copies end to end.
//   - A per-subscriber lease (heartbeat word in a control segment) lets
//     the publisher reclaim the reference counts of crashed
//     subscribers; slot generations extend the life-cycle-debug ABA
//     guard across processes, so a descriptor that outlives its slot is
//     rejected as core.ErrStaleGeneration instead of reading recycled
//     bytes.
//
// Everything here degrades gracefully: Available reports whether the
// platform supports the transport at all, and every failure mode at the
// ros layer (remote peer, mapping failure, old build) falls back to TCP.
package shm

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"rossf/internal/core"
	"rossf/internal/obs"
)

// Segment geometry. Slot sizes are powers of two between minSlotSize
// and maxSlotSize; a segment holds slotCount equal slots plus a header
// ring of per-slot state. Slots are laid out at a STRIDE larger than
// the slot size, and the file is truncated to the full strided extent
// at creation: tmpfs files are sparse, so the reservation costs nothing
// until written, and a message that outgrows its slot class extends IN
// PLACE into its own stride headroom (core.ArenaGrower) instead of
// falling back to the heap — arena addresses never move under a live
// message. Capacities above maxSlotSize get a dedicated single-slot
// "large-object" segment (same descriptor format, same lease
// machinery) rather than being declined.
const (
	segMagic  = 0x53485352 // "RSHS" little-endian
	ctlMagic  = 0x43485352 // "RSHC"
	shmVer    = 2          // v2: strided sparse layout (+32 u64 stride)
	pageSize  = 4096
	hdrBytes  = 64 // segment/control file header
	slotHdr   = 64 // per-slot header ring entry
	peerEntry = 64 // per-peer lease table entry

	minSlotSize = 4096
	maxSlotSize = 1 << 26

	// slotGrowth is the stride multiplier for pooled slots: each slot
	// reserves slotGrowth× its class size of sparse headroom, so a grow
	// can cross log2(slotGrowth) size classes without moving.
	slotGrowth = 16

	// maxLargeBytes caps a single message (Descriptor.Length is u32 and
	// large-object reservations double the rounded capacity).
	maxLargeBytes = 1 << 31

	// largeCacheSegs bounds idle large-object segments kept mapped for
	// reuse; extras are unlinked on release.
	largeCacheSegs = 2

	// MaxPeers bounds simultaneous shm subscribers per publisher
	// process: slot ownership is a 32-bit per-peer bitmask.
	MaxPeers = 32

	// targetSegBytes sizes new segments: slotCount ≈ targetSegBytes /
	// slotSize, clamped to [minSlots, maxSlots].
	targetSegBytes = 8 << 20
	minSlots       = 4
	maxSlots       = 512
)

// MaxMessageBytes is the largest message capacity the transport can
// serve from shared memory. Anything at or below it that still falls
// back to TCP is a bug (the fallback reason tells which); above it the
// oversized fallback is by design.
const MaxMessageBytes = maxLargeBytes

// Peer lease states in the control segment.
const (
	peerFree     = 0
	peerActive   = 1
	peerDraining = 2
)

// hbDrained is the heartbeat sentinel a mapper publishes after its last
// slot reference has been released: the peer holds nothing, so the
// publisher's reaper may free the entry immediately, regardless of
// lease age or process liveness. AcquirePeer always stamps a real
// (positive) timestamp, so the sentinel is unambiguous.
const hbDrained = 0

// Errors surfaced by the transport. ErrStale wraps
// core.ErrStaleGeneration so callers can use a single errors.Is check
// for both in-process and cross-process dangling accesses.
var (
	ErrUnavailable = errors.New("shm: shared-memory transport unavailable on this platform")
	ErrBadSegment  = errors.New("shm: malformed or incompatible segment")
	ErrNoPeerSlot  = errors.New("shm: no free peer lease slot")
	ErrClosed      = errors.New("shm: store closed")
)

// ErrStale reports a descriptor whose generation no longer matches its
// slot — the cross-process form of a dangling pointer.
var ErrStale = fmt.Errorf("shm: descriptor generation mismatch: %w", core.ErrStaleGeneration)

// Available reports whether this platform can run the shared-memory
// transport (mmap support and a writable backing directory).
func Available() bool {
	if !mmapSupported {
		return false
	}
	return Dir() != ""
}

// Dir returns the directory backing shared segments: ROSSF_SHM_DIR if
// set, /dev/shm where present (a tmpfs, so segments never touch disk),
// else the OS temp directory. Empty means no usable directory.
func Dir() string {
	if d := os.Getenv("ROSSF_SHM_DIR"); d != "" {
		return d
	}
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		return "/dev/shm"
	}
	return os.TempDir()
}

var (
	enableOnce   sync.Once
	defaultStore *Store
	defaultErr   error
)

// Enable creates the process-wide default Store and installs it as the
// default manager's backing store, so every core.New allocation in the
// process becomes shareable. Idempotent; subsequent calls return the
// first result. Intended for main packages — libraries and tests should
// create their own Store.
func Enable() (*Store, error) {
	enableOnce.Do(func() {
		defaultStore, defaultErr = NewStore(Options{Stats: obs.Default().Shm()})
		if defaultErr == nil {
			core.Default().SetBackingStore(defaultStore)
		}
	})
	return defaultStore, defaultErr
}

// slotSizeFor rounds a capacity up to the pooled slot-size class
// serving it, or 0 when the capacity is above the largest pooled class
// (the store then serves it from a dedicated large-object segment).
// A capacity of exactly maxSlotSize is servable: the class loop is
// inclusive, matching core's pool where 1<<maxClassShift is the largest
// pooled — not the first rejected — request.
func slotSizeFor(capacity int) int {
	if capacity > maxSlotSize {
		return 0
	}
	s := minSlotSize
	for s < capacity {
		s <<= 1
	}
	return s
}

// strideFor returns the per-slot stride (reserved sparse extent) for a
// slot class: slotGrowth× the class size, capped at maxLargeBytes. The
// reservation is virtual — tmpfs commits pages only when written — so
// even the top pooled class can keep real growth headroom, crossing
// from pooled sizes into large-object territory without ever moving.
func strideFor(slotSize int) int {
	stride := slotSize * slotGrowth
	if stride > maxLargeBytes {
		stride = maxLargeBytes
	}
	if stride < slotSize {
		stride = slotSize
	}
	return stride
}

// alignUp rounds n up to the next multiple of align (a power of two).
func alignUp(n, align int) int { return (n + align - 1) &^ (align - 1) }
