package shm

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync/atomic"
	"unsafe"
)

// Segment file layout (all integers little-endian, header fields fixed
// at creation, per-slot state updated atomically in place):
//
//	offset 0            64-byte file header
//	  +0  u32  magic "RSHS"
//	  +4  u32  version
//	  +8  u64  segment id
//	  +16 u32  slot size (power of two)
//	  +20 u32  slot count
//	  +24 u64  creation time, unix nanos
//	offset 64           slot header ring: slotCount × 64-byte entries
//	  +0  i32  refs     — atomic; publisher baseline + one per sharing peer
//	  +4  u32  owner    — atomic bitmask of peers holding a reference
//	  +8  u64  gen      — atomic generation, bumped when the slot is reused
//	  +16 u32  used     — payload length of the current message
//	offset align4K(64+slotCount*64)   slot data: slotCount × slotSize bytes
//
// The refs/owner pair implements idempotent cross-process release: a
// releaser (subscriber callback return, or the publisher's lease reaper
// acting for a dead subscriber) first atomically clears its peer bit
// and only decrements refs if the bit was still set. Both paths can
// race freely; exactly one decrement happens per shared reference.
type segment struct {
	id        uint64
	slotSize  int
	slotCount int
	dataOff   int
	mem       []byte
	file      string
}

type slotState struct {
	refs  atomic.Int32
	owner atomic.Uint32
	gen   atomic.Uint64
	used  uint32
	_     [slotHdr - 24]byte
}

// segmentSize returns the file size for a geometry.
func segmentSize(slotSize, slotCount int) int {
	return alignUp(hdrBytes+slotCount*slotHdr, pageSize) + slotCount*slotSize
}

// createSegment creates and maps a new segment file.
func createSegment(path string, id uint64, slotSize, slotCount int, now int64) (*segment, error) {
	size := segmentSize(slotSize, slotCount)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := f.Truncate(int64(size)); err != nil {
		os.Remove(path)
		return nil, err
	}
	mem, err := mapFile(f, size)
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	binary.LittleEndian.PutUint32(mem[0:], segMagic)
	binary.LittleEndian.PutUint32(mem[4:], shmVer)
	binary.LittleEndian.PutUint64(mem[8:], id)
	binary.LittleEndian.PutUint32(mem[16:], uint32(slotSize))
	binary.LittleEndian.PutUint32(mem[20:], uint32(slotCount))
	binary.LittleEndian.PutUint64(mem[24:], uint64(now))
	return &segment{
		id:        id,
		slotSize:  slotSize,
		slotCount: slotCount,
		dataOff:   alignUp(hdrBytes+slotCount*slotHdr, pageSize),
		mem:       mem,
		file:      path,
	}, nil
}

// openSegment maps an existing segment file (subscriber side) and
// validates its header against this build's layout.
func openSegment(path string, wantID uint64) (*segment, error) {
	// Read-write: subscribers update reference counts in place.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() < hdrBytes {
		return nil, fmt.Errorf("%w: %s truncated", ErrBadSegment, path)
	}
	mem, err := mapFile(f, int(fi.Size()))
	if err != nil {
		return nil, err
	}
	s := &segment{mem: mem, file: path}
	if binary.LittleEndian.Uint32(mem[0:]) != segMagic ||
		binary.LittleEndian.Uint32(mem[4:]) != shmVer {
		unmapFile(mem)
		return nil, fmt.Errorf("%w: %s bad magic/version", ErrBadSegment, path)
	}
	s.id = binary.LittleEndian.Uint64(mem[8:])
	s.slotSize = int(binary.LittleEndian.Uint32(mem[16:]))
	s.slotCount = int(binary.LittleEndian.Uint32(mem[20:]))
	s.dataOff = alignUp(hdrBytes+s.slotCount*slotHdr, pageSize)
	if s.id != wantID || s.slotSize < minSlotSize || s.slotSize > maxSlotSize ||
		s.slotCount <= 0 || s.slotCount > maxSlots ||
		int(fi.Size()) < segmentSize(s.slotSize, s.slotCount) {
		unmapFile(mem)
		return nil, fmt.Errorf("%w: %s inconsistent geometry", ErrBadSegment, path)
	}
	return s, nil
}

// slot returns the in-place state of slot i. The mapping is page-
// aligned and entries are 64-byte strided, so the atomics are always
// naturally aligned.
func (s *segment) slot(i int) *slotState {
	return (*slotState)(unsafe.Pointer(&s.mem[hdrBytes+i*slotHdr]))
}

// data returns slot i's full data window.
func (s *segment) data(i int) []byte {
	off := s.dataOff + i*s.slotSize
	return s.mem[off : off+s.slotSize : off+s.slotSize]
}

// setUsed records the payload length for the slot's current message.
// Written only by the publisher between allocation and share, so a
// plain store ordered before the descriptor send is sufficient.
func (s *segment) setUsed(i int, n int) {
	binary.LittleEndian.PutUint32(s.mem[hdrBytes+i*slotHdr+16:], uint32(n))
}

func (s *segment) size() int { return segmentSize(s.slotSize, s.slotCount) }

// close unmaps the segment and optionally unlinks its file.
func (s *segment) close(unlink bool) {
	unmapFile(s.mem)
	s.mem = nil
	if unlink {
		os.Remove(s.file)
	}
}

// releaseShared performs the idempotent peer release on a slot: clear
// the peer's owner bit, and decrement refs only if this call was the
// one that cleared it. Safe to invoke from any process, any number of
// times, concurrently with the publisher's lease reaper.
func releaseShared(st *slotState, peer int) {
	bit := uint32(1) << uint(peer)
	if old := st.owner.And(^bit); old&bit != 0 {
		st.refs.Add(-1)
	}
}
