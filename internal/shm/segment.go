package shm

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync/atomic"
	"unsafe"
)

// Segment file layout v2 (all integers little-endian, header fields
// fixed at creation, per-slot state updated atomically in place):
//
//	offset 0            64-byte file header
//	  +0  u32  magic "RSHS"
//	  +4  u32  version
//	  +8  u64  segment id
//	  +16 u32  slot size (power of two; may exceed maxSlotSize for a
//	           large-object segment)
//	  +20 u32  slot count (1 for large-object segments)
//	  +24 u64  creation time, unix nanos
//	  +32 u64  slot stride (≥ slot size, page-multiple)
//	offset 64           slot header ring: slotCount × 64-byte entries
//	  +0  i32  refs     — atomic; publisher baseline + one per sharing peer
//	  +4  u32  owner    — atomic bitmask of peers holding a reference
//	  +8  u64  gen      — atomic generation, bumped when the slot is reused
//	  +16 u32  used     — payload length of the current message
//	offset align4K(64+slotCount*64)   slot data: slotCount × stride bytes
//
// The stride is the v2 change: each slot reserves stride bytes but only
// slotSize are granted initially. The file is truncated to the full
// strided extent at creation and both sides map all of it; tmpfs keeps
// unwritten pages sparse, so the reservation is free until a message
// actually grows into it. Because the whole extent is mapped up front,
// publisher-side growth (Store.GrowArena) is pure bookkeeping — no
// remap, no new pointer — and subscriber-side resolutions of a grown
// message need nothing beyond a stride-wide bounds check.
//
// The refs/owner pair implements idempotent cross-process release: a
// releaser (subscriber callback return, or the publisher's lease reaper
// acting for a dead subscriber) first atomically clears its peer bit
// and only decrements refs if the bit was still set. Both paths can
// race freely; exactly one decrement happens per shared reference.
type segment struct {
	id        uint64
	slotSize  int
	slotCount int
	stride    int
	dataOff   int
	mem       []byte
	file      string
	// Publisher-side only fields. f is the creating fd, retained so
	// grown or oversized pages can be hole-punched back to the OS when
	// a slot is recycled; grown tracks the capacity currently granted
	// per slot (slotSize ≤ grown[i] ≤ stride). Mappers leave both zero.
	f     *os.File
	grown []int
	large bool // dedicated single-slot segment above the pooled classes
}

type slotState struct {
	refs  atomic.Int32
	owner atomic.Uint32
	gen   atomic.Uint64
	used  uint32
	_     [slotHdr - 24]byte
}

// segmentExtent returns the mapped (and apparent file) size for a
// geometry — the strided data region, most of it sparse in practice.
func segmentExtent(slotCount, stride int) int {
	return alignUp(hdrBytes+slotCount*slotHdr, pageSize) + slotCount*stride
}

// createSegment creates and maps a new segment file (publisher side).
// The file is truncated to the full strided extent; tmpfs allocates
// pages lazily, so apparent size ≫ physical size is the normal state.
// The fd is retained on the returned segment for hole punching.
func createSegment(path string, id uint64, slotSize, slotCount, stride int, now int64) (*segment, error) {
	size := segmentExtent(slotCount, stride)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	mem, err := mapFile(f, size)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	binary.LittleEndian.PutUint32(mem[0:], segMagic)
	binary.LittleEndian.PutUint32(mem[4:], shmVer)
	binary.LittleEndian.PutUint64(mem[8:], id)
	binary.LittleEndian.PutUint32(mem[16:], uint32(slotSize))
	binary.LittleEndian.PutUint32(mem[20:], uint32(slotCount))
	binary.LittleEndian.PutUint64(mem[24:], uint64(now))
	binary.LittleEndian.PutUint64(mem[32:], uint64(stride))
	grown := make([]int, slotCount)
	for i := range grown {
		grown[i] = slotSize
	}
	return &segment{
		id:        id,
		slotSize:  slotSize,
		slotCount: slotCount,
		stride:    stride,
		dataOff:   alignUp(hdrBytes+slotCount*slotHdr, pageSize),
		mem:       mem,
		file:      path,
		f:         f,
		grown:     grown,
		large:     slotSize > maxSlotSize,
	}, nil
}

// openSegment maps an existing segment file (subscriber side) and
// validates its header against this build's layout. A v1 segment (or a
// v3 future one) is rejected as ErrBadSegment — the ros layer then
// falls back to TCP and counts the old_build reason — rather than
// being misread with the wrong geometry.
func openSegment(path string, wantID uint64) (*segment, error) {
	// Read-write: subscribers update reference counts in place.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() < hdrBytes {
		return nil, fmt.Errorf("%w: %s truncated", ErrBadSegment, path)
	}
	mem, err := mapFile(f, int(fi.Size()))
	if err != nil {
		return nil, err
	}
	s := &segment{mem: mem, file: path}
	if binary.LittleEndian.Uint32(mem[0:]) != segMagic ||
		binary.LittleEndian.Uint32(mem[4:]) != shmVer {
		unmapFile(mem)
		return nil, fmt.Errorf("%w: %s bad magic/version", ErrBadSegment, path)
	}
	s.id = binary.LittleEndian.Uint64(mem[8:])
	s.slotSize = int(binary.LittleEndian.Uint32(mem[16:]))
	s.slotCount = int(binary.LittleEndian.Uint32(mem[20:]))
	s.stride = int(binary.LittleEndian.Uint64(mem[32:]))
	s.dataOff = alignUp(hdrBytes+s.slotCount*slotHdr, pageSize)
	s.large = s.slotSize > maxSlotSize
	if s.id != wantID || s.slotSize < minSlotSize || s.slotSize > maxLargeBytes ||
		s.slotCount <= 0 || s.slotCount > maxSlots ||
		s.stride < s.slotSize || s.stride > maxLargeBytes || s.stride%pageSize != 0 ||
		int(fi.Size()) < segmentExtent(s.slotCount, s.stride) {
		unmapFile(mem)
		return nil, fmt.Errorf("%w: %s inconsistent geometry", ErrBadSegment, path)
	}
	return s, nil
}

// slot returns the in-place state of slot i. The mapping is page-
// aligned and entries are 64-byte strided, so the atomics are always
// naturally aligned.
func (s *segment) slot(i int) *slotState {
	return (*slotState)(unsafe.Pointer(&s.mem[hdrBytes+i*slotHdr]))
}

// dataSpan returns the first n bytes of slot i's data window. n may
// exceed slotSize up to the stride (a grown message).
func (s *segment) dataSpan(i, n int) []byte {
	off := s.dataOff + i*s.stride
	return s.mem[off : off+n : off+n]
}

// data returns slot i's initially granted data window.
func (s *segment) data(i int) []byte { return s.dataSpan(i, s.slotSize) }

// setUsed records the payload length for the slot's current message.
// Written only by the publisher between allocation and share, so a
// plain store ordered before the descriptor send is sufficient.
func (s *segment) setUsed(i int, n int) {
	binary.LittleEndian.PutUint32(s.mem[hdrBytes+i*slotHdr+16:], uint32(n))
}

func (s *segment) size() int { return segmentExtent(s.slotCount, s.stride) }

// punchSlack returns slot i's pages beyond keep bytes to the OS
// (publisher side, creating fd retained). Used when recycling a slot
// whose previous occupant grew past its class, so sparse headroom does
// not stay physically resident forever. Best-effort: on platforms or
// filesystems without hole punching the pages simply stay, which is a
// memory-footprint matter, never a correctness one — the next occupant
// overwrites what it uses and never reads past its own writes.
func (s *segment) punchSlack(i, keep int) {
	if s.f == nil || i >= len(s.grown) || s.grown[i] <= keep {
		return
	}
	off := s.dataOff + i*s.stride + keep
	punchHole(s.f, off, s.grown[i]-keep)
	s.grown[i] = keep
}

// close unmaps the segment, closes the retained fd (publisher side) and
// optionally unlinks its file. Unlinking is safe while other processes
// still have the file mapped: a mapping survives unlink, so a mapper
// holding resolutions keeps its bytes until its own unmap.
func (s *segment) close(unlink bool) {
	unmapFile(s.mem)
	s.mem = nil
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	if unlink {
		os.Remove(s.file)
	}
}

// releaseShared performs the idempotent peer release on a slot: clear
// the peer's owner bit, and decrement refs only if this call was the
// one that cleared it. Safe to invoke from any process, any number of
// times, concurrently with the publisher's lease reaper.
func releaseShared(st *slotState, peer int) {
	bit := uint32(1) << uint(peer)
	if old := st.owner.And(^bit); old&bit != 0 {
		st.refs.Add(-1)
	}
}
