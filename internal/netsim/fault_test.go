package netsim

import (
	"bytes"
	"io"
	"math"
	"testing"
	"time"
)

// TestTxTimeProperties pins the clamping contract for adversarial
// bandwidth values: a pacing duration is never negative, never
// overflows, and is monotone non-decreasing in the byte count. Before
// the clamp, a tiny bandwidth made the float64 seconds overflow the
// int64 nanosecond conversion and wrap to a negative Duration, which
// time.Sleep treats as zero — silently disabling pacing exactly when
// it should be at its heaviest.
func TestTxTimeProperties(t *testing.T) {
	bandwidths := []float64{
		0, -1, -1e300, 1e-300, 1e-12, 1e-9, 1e-3, 1, 8, 1e3, 1e9, 10e9,
		1e18, 1e300, math.MaxFloat64, math.Inf(1), math.Inf(-1), math.NaN(),
		math.SmallestNonzeroFloat64,
	}
	sizes := []int{-1, 0, 1, 2, 3, 1250, 1 << 16, 1 << 26, 1 << 30, math.MaxInt32}
	for _, bps := range bandwidths {
		l := Link{BitsPerSecond: bps}
		prev := time.Duration(0)
		for _, n := range sizes {
			d := l.txTime(n)
			if d < 0 {
				t.Fatalf("txTime(%d bytes @%g bps) = %v: negative", n, bps, d)
			}
			if d < prev {
				t.Fatalf("txTime not monotone @%g bps: %d bytes -> %v after %v", bps, n, d, prev)
			}
			prev = d
		}
	}
	// The degenerate regimes pin exact values.
	if d := (Link{BitsPerSecond: 1e-300}).txTime(1 << 20); d != time.Duration(math.MaxInt64) {
		t.Errorf("vanishing bandwidth should saturate, got %v", d)
	}
	if d := (Link{BitsPerSecond: math.Inf(1)}).txTime(1 << 20); d != 0 {
		t.Errorf("infinite bandwidth should not pace, got %v", d)
	}
	if d := (Link{BitsPerSecond: math.NaN()}).txTime(1 << 20); d != 0 {
		t.Errorf("NaN bandwidth should not pace, got %v", d)
	}
}

// TestFaultDropLosesWrites checks the write-side drop path: dropped
// writes are acknowledged but never reach the peer.
func TestFaultDropLosesWrites(t *testing.T) {
	client, server := loopbackPair(t)
	f := &Fault{DropProb: 1, Seed: 42}
	fc := Link{Fault: f}.Wrap(client)
	if n, err := fc.Write([]byte("vanishes")); err != nil || n != 8 {
		t.Fatalf("dropped write returned (%d, %v)", n, err)
	}
	// Prove nothing arrived.
	server.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := server.Read(buf); err == nil {
		t.Fatalf("server read %q despite 100%% drop", buf[:n])
	}
	if f.Stats().Drops != 1 {
		t.Errorf("Drops = %d, want 1", f.Stats().Drops)
	}
}

// TestFaultCorruptFlipsOneBit checks that corruption changes exactly
// one bit and never mutates the caller's buffer.
func TestFaultCorruptFlipsOneBit(t *testing.T) {
	client, server := loopbackPair(t)
	f := &Fault{CorruptProb: 1, Seed: 7}
	fc := Link{Fault: f}.Wrap(client)
	orig := []byte("twelve bytes")
	sent := append([]byte(nil), orig...)
	if _, err := fc.Write(sent); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sent, orig) {
		t.Error("Write mutated the caller's buffer")
	}
	got := make([]byte, len(orig))
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		diff += popcount8(got[i] ^ orig[i])
	}
	if diff != 1 {
		t.Errorf("corruption flipped %d bits, want exactly 1", diff)
	}
}

// TestFaultGraceExemptsEarlyOps checks that the first Grace operations
// pass through clean.
func TestFaultGraceExemptsEarlyOps(t *testing.T) {
	client, server := loopbackPair(t)
	f := &Fault{DropProb: 1, Grace: 2, Seed: 3}
	fc := Link{Fault: f}.Wrap(client)
	if _, err := fc.Write([]byte("ok1")); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Write([]byte("ok2")); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Write([]byte("gone")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ok1ok2" {
		t.Errorf("graced writes arrived as %q", got)
	}
	if f.Stats().Drops != 1 {
		t.Errorf("Drops = %d, want 1 (only the post-grace write)", f.Stats().Drops)
	}
}

// TestPartitionSeversAndHealRestores checks the partition switch end
// to end: live connections die, dials fail, and Heal restores dialing.
func TestPartitionSeversAndHealRestores(t *testing.T) {
	client, _ := loopbackPair(t)
	f := &Fault{}
	link := Link{Fault: f}
	fc := link.Wrap(client)
	f.Partition()
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Error("write succeeded through a partition")
	}
	if _, err := link.Dialer()("127.0.0.1:1"); err == nil {
		t.Error("dial succeeded through a partition")
	}
	f.Heal()
	// After Heal new dials proceed (to a real listener).
	c2, s2 := loopbackPair(t)
	defer s2.Close()
	fc2 := link.Wrap(c2)
	if _, err := fc2.Write([]byte("y")); err != nil {
		t.Errorf("write after Heal failed: %v", err)
	}
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}
