package netsim

import (
	"io"
	"net"
	"testing"
	"time"
)

// loopbackPair returns a connected TCP pair over loopback.
func loopbackPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

func TestTxTime(t *testing.T) {
	l := Link{BitsPerSecond: 10e9}
	if got := l.txTime(1250); got != time.Microsecond {
		t.Errorf("txTime(1250B @10Gb/s) = %v, want 1µs", got)
	}
	if got := (Link{}).txTime(1 << 20); got != 0 {
		t.Errorf("unpaced txTime = %v, want 0", got)
	}
}

func TestBandwidthPacing(t *testing.T) {
	client, server := loopbackPair(t)
	// 100 Mb/s: 1 MiB should take ~84 ms to "cross the wire".
	link := Link{BitsPerSecond: 100e6}
	paced := link.Wrap(client)

	const size = 1 << 20
	go func() {
		buf := make([]byte, size)
		server.Write(buf)
	}()

	start := time.Now()
	if _, err := io.ReadFull(paced, make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	wantMin := link.txTime(size) * 9 / 10
	if elapsed < wantMin {
		t.Errorf("1 MiB over 100Mb/s took %v, want >= %v", elapsed, wantMin)
	}
	if elapsed > 5*link.txTime(size) {
		t.Errorf("pacing too slow: %v for expected %v", elapsed, link.txTime(size))
	}
}

func TestLatencyDominatesSmallMessages(t *testing.T) {
	client, server := loopbackPair(t)
	link := Link{BitsPerSecond: 10e9, Latency: 20 * time.Millisecond}
	paced := link.Wrap(client)

	go func() { server.Write([]byte("ping")) }()
	start := time.Now()
	if _, err := io.ReadFull(paced, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < link.Latency {
		t.Errorf("4B message arrived in %v, want >= %v latency", elapsed, link.Latency)
	}
}

func TestWritePacingAppliesBackpressure(t *testing.T) {
	client, server := loopbackPair(t)
	link := Link{BitsPerSecond: 50e6} // 50 Mb/s
	paced := link.Wrap(client)

	const size = 256 << 10
	drained := make(chan struct{})
	go func() {
		io.ReadFull(server, make([]byte, size))
		close(drained)
	}()
	start := time.Now()
	if _, err := paced.Write(make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	<-drained
	if wantMin := link.txTime(size) * 9 / 10; elapsed < wantMin {
		t.Errorf("write of %dB returned after %v, want >= %v", size, elapsed, wantMin)
	}
}

func TestDialerWorksEndToEnd(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		c.Write([]byte("hello"))
	}()

	dial := TenGigE.Dialer()
	c, err := dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Errorf("got %q", buf)
	}
}
