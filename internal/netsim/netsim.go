// Package netsim simulates an inter-machine network link on top of a
// local connection. The paper's Fig. 16 experiment runs on two machines
// joined by an Intel 82599 10 GbE NIC; this package reproduces that cost
// model — transmission time proportional to bytes at the configured
// bandwidth, plus fixed propagation latency — by pacing the bytes flowing
// through a wrapped net.Conn. The middleware code under test is byte-for-
// byte the same as on the loopback path; only the dialer changes.
package netsim

import (
	"net"
	"sync"
	"time"
)

// TenGigE is the paper's inter-machine link: 10 Gb/s with a typical
// same-rack round-trip of ~100µs (50µs each way).
var TenGigE = Link{BitsPerSecond: 10e9, Latency: 50 * time.Microsecond}

// GigE is a commodity 1 Gb/s link for sensitivity studies.
var GigE = Link{BitsPerSecond: 1e9, Latency: 50 * time.Microsecond}

// Link describes a simulated network link.
type Link struct {
	// BitsPerSecond is the link bandwidth; 0 disables pacing.
	BitsPerSecond float64
	// Latency is the one-way propagation delay added to every byte.
	Latency time.Duration
}

// txTime returns how long n bytes occupy the wire.
func (l Link) txTime(n int) time.Duration {
	if l.BitsPerSecond <= 0 {
		return 0
	}
	return time.Duration(float64(n) * 8 / l.BitsPerSecond * float64(time.Second))
}

// Dialer returns a dial function (compatible with ros.WithDialer) that
// routes every connection through the link.
func (l Link) Dialer() func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return l.Wrap(c), nil
	}
}

// Wrap places an established connection behind the link. Each direction
// is paced independently (full duplex): reads of publisher frames are
// delayed as if the bytes had crossed the simulated wire, and writes are
// delayed symmetrically.
func (l Link) Wrap(c net.Conn) net.Conn {
	return &pacedConn{conn: c, link: l}
}

// pacedConn delays reads and writes to match the link's cost model. Each
// direction keeps its own wire-busy clock, so pipelined messages queue
// behind each other exactly as on a saturated NIC.
type pacedConn struct {
	conn net.Conn
	link Link

	readMu    sync.Mutex
	readFree  time.Time
	writeMu   sync.Mutex
	writeFree time.Time
}

var _ net.Conn = (*pacedConn)(nil)

// pace computes the arrival time for n bytes on one direction's wire and
// sleeps until then.
func pace(mu *sync.Mutex, free *time.Time, l Link, n int) {
	mu.Lock()
	now := time.Now()
	start := *free
	if start.Before(now) {
		start = now
	}
	done := start.Add(l.txTime(n))
	*free = done
	mu.Unlock()
	arrival := done.Add(l.Latency)
	if d := time.Until(arrival); d > 0 {
		time.Sleep(d)
	}
}

func (p *pacedConn) Read(b []byte) (int, error) {
	n, err := p.conn.Read(b)
	if n > 0 {
		pace(&p.readMu, &p.readFree, p.link, n)
	}
	return n, err
}

func (p *pacedConn) Write(b []byte) (int, error) {
	if len(b) > 0 {
		pace(&p.writeMu, &p.writeFree, p.link, len(b))
	}
	return p.conn.Write(b)
}

func (p *pacedConn) Close() error                       { return p.conn.Close() }
func (p *pacedConn) LocalAddr() net.Addr                { return p.conn.LocalAddr() }
func (p *pacedConn) RemoteAddr() net.Addr               { return p.conn.RemoteAddr() }
func (p *pacedConn) SetDeadline(t time.Time) error      { return p.conn.SetDeadline(t) }
func (p *pacedConn) SetReadDeadline(t time.Time) error  { return p.conn.SetReadDeadline(t) }
func (p *pacedConn) SetWriteDeadline(t time.Time) error { return p.conn.SetWriteDeadline(t) }
