// Package netsim simulates an inter-machine network link on top of a
// local connection. The paper's Fig. 16 experiment runs on two machines
// joined by an Intel 82599 10 GbE NIC; this package reproduces that cost
// model — transmission time proportional to bytes at the configured
// bandwidth, plus fixed propagation latency — by pacing the bytes flowing
// through a wrapped net.Conn. The middleware code under test is byte-for-
// byte the same as on the loopback path; only the dialer changes.
//
// Beyond the healthy-link cost model, a Link can carry a Fault plan that
// injects the failure modes of a degraded production link — probabilistic
// frame drop, byte corruption, read/write stalls, mid-stream connection
// resets, and a full Partition/Heal switch — so the middleware's
// hardening (checksums, reconnect backoff, write deadlines) can be
// exercised deterministically in tests (internal/chaostest).
package netsim

import (
	"errors"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TenGigE is the paper's inter-machine link: 10 Gb/s with a typical
// same-rack round-trip of ~100µs (50µs each way).
var TenGigE = Link{BitsPerSecond: 10e9, Latency: 50 * time.Microsecond}

// GigE is a commodity 1 Gb/s link for sensitivity studies.
var GigE = Link{BitsPerSecond: 1e9, Latency: 50 * time.Microsecond}

// Link describes a simulated network link.
type Link struct {
	// BitsPerSecond is the link bandwidth; 0 disables pacing.
	BitsPerSecond float64
	// Latency is the one-way propagation delay added to every byte.
	Latency time.Duration
	// Fault, when non-nil, injects failures into every wrapped
	// connection. The same Fault may back many links and connections;
	// its Partition/Heal switch then severs them all at once.
	Fault *Fault
}

// maxTxSeconds bounds txTime before the float64→Duration conversion
// overflows int64 nanoseconds (adversarially tiny bandwidths would
// otherwise wrap to negative durations).
const maxTxSeconds = float64(math.MaxInt64 / int64(time.Second))

// txTime returns how long n bytes occupy the wire. It is clamped: the
// result is never negative and saturates at the maximum Duration, and
// non-finite or non-positive bandwidths disable pacing, so pacing of N
// bytes is monotone in N for every bandwidth value.
func (l Link) txTime(n int) time.Duration {
	if n <= 0 || !(l.BitsPerSecond > 0) || math.IsInf(l.BitsPerSecond, 1) {
		return 0
	}
	sec := float64(n) * 8 / l.BitsPerSecond
	if !(sec > 0) {
		return 0
	}
	if sec >= maxTxSeconds {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(sec * float64(time.Second))
}

// Dialer returns a dial function (compatible with ros.WithDialer) that
// routes every connection through the link.
func (l Link) Dialer() func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		if l.Fault != nil && l.Fault.isPartitioned() {
			return nil, ErrPartitioned
		}
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return l.Wrap(c), nil
	}
}

// Wrap places an established connection behind the link. Each direction
// is paced independently (full duplex): reads of publisher frames are
// delayed as if the bytes had crossed the simulated wire, and writes are
// delayed symmetrically. When the link carries a Fault, the fault layer
// sits between the pacing and the real connection.
func (l Link) Wrap(c net.Conn) net.Conn {
	if l.Fault != nil {
		c = l.Fault.wrap(c)
	}
	return &pacedConn{conn: c, link: l}
}

// pacedConn delays reads and writes to match the link's cost model. Each
// direction keeps its own wire-busy clock, so pipelined messages queue
// behind each other exactly as on a saturated NIC.
type pacedConn struct {
	conn net.Conn
	link Link

	readMu    sync.Mutex
	readFree  time.Time
	writeMu   sync.Mutex
	writeFree time.Time
}

var _ net.Conn = (*pacedConn)(nil)

// pace computes the arrival time for n bytes on one direction's wire and
// sleeps until then.
func pace(mu *sync.Mutex, free *time.Time, l Link, n int) {
	mu.Lock()
	now := time.Now()
	start := *free
	if start.Before(now) {
		start = now
	}
	done := start.Add(l.txTime(n))
	*free = done
	mu.Unlock()
	arrival := done.Add(l.Latency)
	if d := time.Until(arrival); d > 0 {
		time.Sleep(d)
	}
}

func (p *pacedConn) Read(b []byte) (int, error) {
	n, err := p.conn.Read(b)
	if n > 0 {
		pace(&p.readMu, &p.readFree, p.link, n)
	}
	return n, err
}

func (p *pacedConn) Write(b []byte) (int, error) {
	if len(b) > 0 {
		pace(&p.writeMu, &p.writeFree, p.link, len(b))
	}
	return p.conn.Write(b)
}

func (p *pacedConn) Close() error                       { return p.conn.Close() }
func (p *pacedConn) LocalAddr() net.Addr                { return p.conn.LocalAddr() }
func (p *pacedConn) RemoteAddr() net.Addr               { return p.conn.RemoteAddr() }
func (p *pacedConn) SetDeadline(t time.Time) error      { return p.conn.SetDeadline(t) }
func (p *pacedConn) SetReadDeadline(t time.Time) error  { return p.conn.SetReadDeadline(t) }
func (p *pacedConn) SetWriteDeadline(t time.Time) error { return p.conn.SetWriteDeadline(t) }

// ErrPartitioned reports an operation attempted while the fault plan's
// partition switch is on.
var ErrPartitioned = errors.New("netsim: link partitioned")

// ErrInjectedReset reports a connection reset injected by the fault
// plan.
var ErrInjectedReset = errors.New("netsim: injected connection reset")

// Fault is a scriptable fault plan. Attach one to a Link and every
// connection wrapped by that link misbehaves according to the
// probabilities below. All methods are safe for concurrent use; the
// zero value injects nothing.
//
// Each probability is evaluated independently per I/O operation, in
// both directions: a Write can be dropped or corrupted before it
// reaches the wire, and a Read's bytes can be lost or corrupted as
// they arrive. At the transport layer an operation is a whole frame
// header or payload — modelling a lossy link below TCP's guarantees,
// the regime the middleware's checksums and resynchronization must
// survive.
type Fault struct {
	// DropProb is the probability an operation's bytes are silently
	// lost: a Write is reported as fully written but never transmitted;
	// a Read's bytes are discarded and the read continues. Models
	// packet loss on a link without reliable delivery.
	DropProb float64
	// CorruptProb is the probability an operation has one random bit
	// flipped. Models bit errors that slip past link-layer CRCs.
	CorruptProb float64
	// StallProb is the probability a Read or Write pauses for Stall
	// before proceeding. Models congestion, bufferbloat, or a peer
	// wedged in GC.
	StallProb float64
	// Stall is the stall duration (default 100ms when StallProb > 0).
	Stall time.Duration
	// ResetProb is the probability an operation tears the connection
	// down mid-stream. Models RST injection, NAT timeouts, or a peer
	// crash.
	ResetProb float64
	// Seed makes the fault schedule reproducible; 0 seeds from the
	// clock.
	Seed int64
	// Grace exempts each connection's first Grace Read/Write operations
	// from the probabilistic faults above, so connections establish
	// (handshake, type negotiation) before the link degrades — the
	// interesting regime for recovery machinery. Partition ignores
	// Grace. Zero means faults apply from the first byte.
	Grace int

	mu          sync.Mutex
	rng         *rand.Rand
	partitioned bool
	conns       map[net.Conn]struct{}

	drops, corruptions, stalls, resets atomic.Uint64
}

// FaultStats is a snapshot of injected-fault counters.
type FaultStats struct {
	Drops       uint64 // writes silently discarded
	Corruptions uint64 // writes with a flipped byte
	Stalls      uint64 // operations delayed by Stall
	Resets      uint64 // connections torn down mid-stream
}

// Stats returns the counters accumulated so far.
func (f *Fault) Stats() FaultStats {
	return FaultStats{
		Drops:       f.drops.Load(),
		Corruptions: f.corruptions.Load(),
		Stalls:      f.stalls.Load(),
		Resets:      f.resets.Load(),
	}
}

// Partition flips the partition switch: every existing connection under
// this fault plan is severed and every future dial or I/O fails until
// Heal is called.
func (f *Fault) Partition() {
	f.mu.Lock()
	f.partitioned = true
	conns := make([]net.Conn, 0, len(f.conns))
	for c := range f.conns {
		conns = append(conns, c)
	}
	f.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Heal clears the partition switch; new dials succeed again. Severed
// connections stay dead — recovery is the reconnect machinery's job.
func (f *Fault) Heal() {
	f.mu.Lock()
	f.partitioned = false
	f.mu.Unlock()
}

func (f *Fault) isPartitioned() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.partitioned
}

// roll draws one Bernoulli sample under the plan's seeded generator.
func (f *Fault) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng == nil {
		seed := f.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		f.rng = rand.New(rand.NewSource(seed))
	}
	return f.rng.Float64() < p
}

// intn draws a bounded sample for picking the corrupted byte.
func (f *Fault) intn(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return f.rng.Intn(n)
}

func (f *Fault) stallFor() time.Duration {
	if f.Stall > 0 {
		return f.Stall
	}
	return 100 * time.Millisecond
}

// wrap registers the connection (so Partition can sever it) and returns
// the faulty view of it.
func (f *Fault) wrap(c net.Conn) net.Conn {
	f.mu.Lock()
	if f.conns == nil {
		f.conns = make(map[net.Conn]struct{})
	}
	f.conns[c] = struct{}{}
	f.mu.Unlock()
	return &faultConn{conn: c, f: f}
}

func (f *Fault) forget(c net.Conn) {
	f.mu.Lock()
	delete(f.conns, c)
	f.mu.Unlock()
}

// faultConn injects the plan's failures around a real connection.
type faultConn struct {
	conn net.Conn
	f    *Fault
	ops  atomic.Int64
}

var _ net.Conn = (*faultConn)(nil)

// misbehave runs the per-operation partition/reset/stall checks shared
// by both directions. It reports whether the caller should fail with
// err, and whether this operation is within the connection's grace
// window (probabilistic faults suppressed).
func (c *faultConn) misbehave() (graced bool, err error) {
	if c.f.isPartitioned() {
		c.conn.Close()
		return false, ErrPartitioned
	}
	if c.ops.Add(1) <= int64(c.f.Grace) {
		return true, nil
	}
	if c.f.roll(c.f.ResetProb) {
		c.f.resets.Add(1)
		c.conn.Close()
		return false, ErrInjectedReset
	}
	if c.f.roll(c.f.StallProb) {
		c.f.stalls.Add(1)
		time.Sleep(c.f.stallFor())
	}
	return false, nil
}

func (c *faultConn) Read(b []byte) (int, error) {
	graced, ferr := c.misbehave()
	if ferr != nil {
		return 0, ferr
	}
	for {
		n, err := c.conn.Read(b)
		if graced || n == 0 {
			return n, err
		}
		if c.f.roll(c.f.DropProb) {
			// The bytes were lost on the wire: the receiver never sees
			// them, and the stream continues past the gap.
			c.f.drops.Add(1)
			if err != nil {
				return 0, err
			}
			continue
		}
		if c.f.roll(c.f.CorruptProb) {
			c.f.corruptions.Add(1)
			b[c.f.intn(n)] ^= 1 << uint(c.f.intn(8))
		}
		return n, err
	}
}

func (c *faultConn) Write(b []byte) (int, error) {
	graced, ferr := c.misbehave()
	if ferr != nil {
		return 0, ferr
	}
	if graced || len(b) == 0 {
		return c.conn.Write(b)
	}
	if c.f.roll(c.f.DropProb) {
		c.f.drops.Add(1)
		return len(b), nil // acknowledged, never transmitted
	}
	if c.f.roll(c.f.CorruptProb) {
		c.f.corruptions.Add(1)
		cp := append([]byte(nil), b...)
		cp[c.f.intn(len(cp))] ^= 1 << uint(c.f.intn(8))
		b = cp
	}
	return c.conn.Write(b)
}

func (c *faultConn) Close() error {
	c.f.forget(c.conn)
	return c.conn.Close()
}

func (c *faultConn) LocalAddr() net.Addr                { return c.conn.LocalAddr() }
func (c *faultConn) RemoteAddr() net.Addr               { return c.conn.RemoteAddr() }
func (c *faultConn) SetDeadline(t time.Time) error      { return c.conn.SetDeadline(t) }
func (c *faultConn) SetReadDeadline(t time.Time) error  { return c.conn.SetReadDeadline(t) }
func (c *faultConn) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }
