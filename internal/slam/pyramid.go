package slam

// Image pyramid support: like ORB-SLAM, features are detected at
// multiple scales so the tracker survives scale change — and the
// per-level detection, description, and matching account for most of
// the pipeline's compute, which is what gives the Fig. 18 case study
// its ~30-40 ms processing stage.

// pyramidLevel is one scale of the pyramid.
type pyramidLevel struct {
	gray  []byte
	w, h  int
	scale float64 // multiply level coordinates by this to get level-0 pixels
}

// buildPyramid downsamples gray by factor 1/1.2 per level, reusing the
// scratch slices when possible.
func buildPyramid(gray []byte, w, h, levels int, scratch []pyramidLevel) []pyramidLevel {
	if levels < 1 {
		levels = 1
	}
	out := scratch[:0]
	out = append(out, pyramidLevel{gray: gray, w: w, h: h, scale: 1})
	const factor = 1.2
	for l := 1; l < levels; l++ {
		prev := out[l-1]
		nw := int(float64(prev.w) / factor)
		nh := int(float64(prev.h) / factor)
		if nw < 32 || nh < 32 {
			break
		}
		var buf []byte
		if l < len(scratch) && cap(scratch[l].gray) >= nw*nh {
			buf = scratch[l].gray[:nw*nh]
		} else {
			buf = make([]byte, nw*nh)
		}
		resample(prev.gray, prev.w, prev.h, buf, nw, nh)
		out = append(out, pyramidLevel{gray: buf, w: nw, h: nh, scale: out[l-1].scale * factor})
	}
	return out
}

// resample performs bilinear downsampling.
func resample(src []byte, sw, sh int, dst []byte, dw, dh int) {
	xr := float64(sw-1) / float64(dw)
	yr := float64(sh-1) / float64(dh)
	for y := 0; y < dh; y++ {
		sy := float64(y) * yr
		y0 := int(sy)
		fy := sy - float64(y0)
		if y0 >= sh-1 {
			y0 = sh - 2
			fy = 1
		}
		for x := 0; x < dw; x++ {
			sx := float64(x) * xr
			x0 := int(sx)
			fx := sx - float64(x0)
			if x0 >= sw-1 {
				x0 = sw - 2
				fx = 1
			}
			p00 := float64(src[y0*sw+x0])
			p10 := float64(src[y0*sw+x0+1])
			p01 := float64(src[(y0+1)*sw+x0])
			p11 := float64(src[(y0+1)*sw+x0+1])
			v := p00*(1-fx)*(1-fy) + p10*fx*(1-fy) + p01*(1-fx)*fy + p11*fx*fy
			dst[y*dw+x] = byte(v)
		}
	}
}
