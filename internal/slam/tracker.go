package slam

import (
	"fmt"
	"sort"
)

// descSize is the descriptor patch side; descriptors are descSize² bytes
// sampled around the corner.
const descSize = 8

// descriptor is a normalized intensity patch.
type descriptor [descSize * descSize]byte

// Config tunes the tracker workload.
type Config struct {
	// Threshold is the FAST intensity threshold (default 24).
	Threshold uint8
	// MaxFeatures bounds the per-frame feature count (default 600).
	MaxFeatures int
	// CellSize is the non-max-suppression grid (default 12).
	CellSize int
	// MatchRadius bounds the displacement search in pixels (default 48).
	MatchRadius int
	// PyramidLevels is the number of image scales (factor 1.2 apart, as
	// in ORB) to detect on; default 4. More levels mean more compute,
	// which is how the Fig. 18 workload reaches ORB-SLAM's 30-40 ms.
	PyramidLevels int
	// FocalLength and Baseline parameterize the synthetic depth
	// back-projection for the point cloud output.
	FocalLength float64
}

func (c *Config) fillDefaults() {
	if c.Threshold == 0 {
		c.Threshold = 24
	}
	if c.MaxFeatures == 0 {
		c.MaxFeatures = 600
	}
	if c.CellSize == 0 {
		c.CellSize = 12
	}
	if c.MatchRadius == 0 {
		c.MatchRadius = 48
	}
	if c.FocalLength == 0 {
		c.FocalLength = 525 // the TUM RGBD intrinsics ballpark
	}
	if c.PyramidLevels == 0 {
		c.PyramidLevels = 4
	}
}

// Pose is the integrated camera position (pixels in the world plane;
// a planar stand-in for the SE(3) pose ORB-SLAM emits).
type Pose struct {
	X, Y float64
	// Confidence is the inlier fraction of the last estimate.
	Confidence float64
}

// Point3 is one reconstructed feature point.
type Point3 struct {
	X, Y, Z float32
}

// Result is the output of processing one frame: the three topics of
// Fig. 17.
type Result struct {
	Pose     Pose
	Points   []Point3
	Matches  int
	Features int
	// DX/DY is the estimated frame-to-frame translation.
	DX, DY float64
}

// feature couples a corner with its descriptor.
type feature struct {
	c    Corner
	desc descriptor
}

// Tracker is the stateful visual pipeline: it matches each frame
// against the previous one and integrates the estimated motion.
type Tracker struct {
	cfg  Config
	prev []feature
	pose Pose

	gray []byte         // scratch, reused across frames
	pyr  []pyramidLevel // scratch pyramid storage
}

// NewTracker returns a tracker with defaulted configuration.
func NewTracker(cfg Config) *Tracker {
	cfg.fillDefaults()
	return &Tracker{cfg: cfg}
}

// Pose returns the current integrated pose.
func (t *Tracker) Pose() Pose { return t.pose }

// Process runs the pipeline on one rgb8 frame. depth may be nil; when
// present it back-projects matched features into 3D.
func (t *Tracker) Process(rgb []byte, w, h int, depth []uint16) (*Result, error) {
	if len(rgb) < w*h*3 {
		return nil, fmt.Errorf("slam: rgb buffer %d too small for %dx%d", len(rgb), w, h)
	}
	t.gray = grayFromRGB(rgb, w, h, t.gray)
	t.pyr = buildPyramid(t.gray, w, h, t.cfg.PyramidLevels, t.pyr)

	var feats []feature
	for _, lvl := range t.pyr {
		corners := detectFAST(lvl.gray, lvl.w, lvl.h, t.cfg.Threshold, t.cfg.CellSize, t.cfg.MaxFeatures)
		for _, c := range corners {
			if c.X < descSize/2 || c.Y < descSize/2 ||
				c.X >= lvl.w-descSize/2 || c.Y >= lvl.h-descSize/2 {
				continue
			}
			// Descriptors sample the level image; coordinates report in
			// level-0 pixels so matching and outputs are scale-free.
			f := feature{c: Corner{
				X:     min(int(float64(c.X)*lvl.scale), w-1),
				Y:     min(int(float64(c.Y)*lvl.scale), h-1),
				Score: c.Score,
			}}
			extractDescriptor(lvl.gray, lvl.w, c.X, c.Y, &f.desc)
			feats = append(feats, f)
		}
	}

	res := &Result{Features: len(feats)}
	if len(t.prev) > 0 {
		fdx, fdy, matches, inliers := matchAndEstimate(t.prev, feats, t.cfg.MatchRadius)
		// Features shift opposite to the camera: negate to report camera
		// motion.
		dx, dy := -fdx, -fdy
		res.DX, res.DY = dx, dy
		res.Matches = matches
		t.pose.X += dx
		t.pose.Y += dy
		if matches > 0 {
			t.pose.Confidence = float64(inliers) / float64(matches)
		}
	}
	res.Pose = t.pose

	// Back-project matched features using depth (or a flat plane).
	res.Points = make([]Point3, 0, len(feats))
	for _, f := range feats {
		z := 1.5
		if depth != nil {
			z = float64(depth[f.c.Y*w+f.c.X]) / 1000.0
		}
		res.Points = append(res.Points, Point3{
			X: float32((float64(f.c.X) - float64(w)/2) * z / t.cfg.FocalLength),
			Y: float32((float64(f.c.Y) - float64(h)/2) * z / t.cfg.FocalLength),
			Z: float32(z),
		})
	}

	t.prev = feats
	return res, nil
}

// DrawDebug overlays detected features onto an rgb8 image in place —
// the debug output topic of Fig. 17. It returns the number of markers
// drawn.
func (t *Tracker) DrawDebug(rgb []byte, w, h int) int {
	n := 0
	for _, f := range t.prev {
		drawMarker(rgb, w, h, f.c.X, f.c.Y)
		n++
	}
	return n
}

func drawMarker(rgb []byte, w, h, x, y int) {
	for d := -2; d <= 2; d++ {
		for _, p := range [2][2]int{{x + d, y}, {x, y + d}} {
			px, py := p[0], p[1]
			if px < 0 || py < 0 || px >= w || py >= h {
				continue
			}
			i := (py*w + px) * 3
			rgb[i], rgb[i+1], rgb[i+2] = 0, 255, 0
		}
	}
}

// extractDescriptor samples a normalized descSize² patch.
func extractDescriptor(gray []byte, w, cx, cy int, d *descriptor) {
	var sum int
	i := 0
	for dy := -descSize / 2; dy < descSize/2; dy++ {
		row := (cy + dy) * w
		for dx := -descSize / 2; dx < descSize/2; dx++ {
			v := gray[row+cx+dx]
			d[i] = v
			sum += int(v)
			i++
		}
	}
	mean := sum / len(d)
	for j := range d {
		// Mean-centered (shifted to keep byte range): robust to the
		// dataset's brightness tint.
		v := int(d[j]) - mean + 128
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		d[j] = byte(v)
	}
}

// sad is the sum of absolute differences between descriptors.
func sad(a, b *descriptor) int {
	s := 0
	for i := range a {
		d := int(a[i]) - int(b[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

// matchAndEstimate brute-force matches features against the previous
// frame within a displacement radius, then estimates translation as the
// component-wise median of match displacements and counts inliers
// within 2 pixels of it.
func matchAndEstimate(prev, cur []feature, radius int) (dx, dy float64, matches, inliers int) {
	r2 := radius * radius
	dxs := make([]int, 0, len(cur))
	dys := make([]int, 0, len(cur))
	for i := range cur {
		bestSAD := 1 << 30
		secondSAD := 1 << 30
		bestJ := -1
		for j := range prev {
			ddx := cur[i].c.X - prev[j].c.X
			ddy := cur[i].c.Y - prev[j].c.Y
			if ddx*ddx+ddy*ddy > r2 {
				continue
			}
			s := sad(&cur[i].desc, &prev[j].desc)
			if s < bestSAD {
				secondSAD = bestSAD
				bestSAD, bestJ = s, j
			} else if s < secondSAD {
				secondSAD = s
			}
		}
		// Lowe-style ratio test rejects ambiguous matches.
		if bestJ < 0 || bestSAD*10 >= secondSAD*8 {
			continue
		}
		dxs = append(dxs, cur[i].c.X-prev[bestJ].c.X)
		dys = append(dys, cur[i].c.Y-prev[bestJ].c.Y)
	}
	matches = len(dxs)
	if matches == 0 {
		return 0, 0, 0, 0
	}
	mdx := median(dxs)
	mdy := median(dys)
	for i := range dxs {
		ex, ey := dxs[i]-mdx, dys[i]-mdy
		if ex*ex+ey*ey <= 4 {
			inliers++
		}
	}
	return float64(mdx), float64(mdy), matches, inliers
}

func median(xs []int) int {
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	return sorted[len(sorted)/2]
}
