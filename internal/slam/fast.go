// Package slam implements the visual-tracking workload standing in for
// ORB-SLAM in the paper's application case study (§5.3). The pipeline is
// a real (if compact) feature tracker: FAST-style corner detection with
// non-maximum suppression, patch descriptors, brute-force matching
// against the previous frame, robust translation estimation, and the
// three outputs of Fig. 17 — a camera pose, a feature point cloud, and a
// debug image with the features drawn in. At the paper's 640x480-ish
// frame sizes the computation takes tens of milliseconds, preserving the
// compute-to-transport ratio that makes the Fig. 18 end-to-end gain
// small (~5%).
package slam

// circle16 is the FAST detection circle: 16 offsets (dx, dy) of radius 3
// in Bresenham order.
var circle16 = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1},
	{3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1},
	{-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

// Corner is one detected feature.
type Corner struct {
	X, Y  int
	Score int
}

// detectFAST finds FAST-9 corners in a grayscale image: pixels where at
// least 9 contiguous circle samples are all brighter or all darker than
// the center by threshold. Non-maximum suppression keeps the strongest
// corner per cellSize x cellSize cell, bounding the feature count.
func detectFAST(gray []byte, w, h int, threshold uint8, cellSize, maxFeatures int) []Corner {
	if cellSize < 8 {
		cellSize = 8
	}
	cw := (w + cellSize - 1) / cellSize
	ch := (h + cellSize - 1) / cellSize
	best := make([]Corner, cw*ch)

	thr := int(threshold)
	for y := 3; y < h-3; y++ {
		row := y * w
		for x := 3; x < w-3; x++ {
			c := int(gray[row+x])
			hi := c + thr
			lo := c - thr

			// Quick reject using the four compass samples: a 9-contiguous
			// arc of the 16-sample circle always covers at least two
			// compass positions, so fewer than two qualifying compass
			// samples rules a corner out.
			n, s := int(gray[row-3*w+x]), int(gray[row+3*w+x])
			e, wv := int(gray[row+x+3]), int(gray[row+x-3])
			brighter := b2i(n > hi) + b2i(s > hi) + b2i(e > hi) + b2i(wv > hi)
			darker := b2i(n < lo) + b2i(s < lo) + b2i(e < lo) + b2i(wv < lo)
			if brighter < 2 && darker < 2 {
				continue
			}

			score := fastScore(gray, w, x, y, c, thr)
			if score == 0 {
				continue
			}
			cell := (y/cellSize)*cw + x/cellSize
			if score > best[cell].Score {
				best[cell] = Corner{X: x, Y: y, Score: score}
			}
		}
	}

	corners := make([]Corner, 0, maxFeatures)
	for _, c := range best {
		if c.Score > 0 {
			corners = append(corners, c)
			if len(corners) == maxFeatures {
				break
			}
		}
	}
	return corners
}

// fastScore checks the 9-contiguous criterion and returns a corner
// strength (sum of absolute differences of the qualifying arc), or 0.
func fastScore(gray []byte, w, x, y, c, thr int) int {
	var vals [16]int
	for i, o := range circle16 {
		vals[i] = int(gray[(y+o[1])*w+x+o[0]])
	}
	hi, lo := c+thr, c-thr

	// Walk the doubled circle looking for >= 9 contiguous qualifying
	// samples.
	score := arcScore(vals[:], hi, true, c)
	if s := arcScore(vals[:], lo, false, c); s > score {
		score = s
	}
	return score
}

func arcScore(vals []int, bound int, brighter bool, c int) int {
	run, bestRun, runSum, bestSum := 0, 0, 0, 0
	for i := 0; i < len(vals)*2; i++ {
		v := vals[i%len(vals)]
		ok := v > bound
		if !brighter {
			ok = v < bound
		}
		if !ok {
			run, runSum = 0, 0
			continue
		}
		run++
		d := v - c
		if d < 0 {
			d = -d
		}
		runSum += d
		if run > bestRun {
			bestRun, bestSum = run, runSum
		}
		if run >= len(vals) {
			break
		}
	}
	if bestRun >= 9 {
		return bestSum
	}
	return 0
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// grayFromRGB converts an interleaved rgb8 image to grayscale in dst
// (allocated if needed) using integer luma weights.
func grayFromRGB(rgb []byte, w, h int, dst []byte) []byte {
	if cap(dst) < w*h {
		dst = make([]byte, w*h)
	}
	dst = dst[:w*h]
	for i := 0; i < w*h; i++ {
		r := int(rgb[3*i])
		g := int(rgb[3*i+1])
		b := int(rgb[3*i+2])
		dst[i] = byte((77*r + 150*g + 29*b) >> 8)
	}
	return dst
}
