package slam

import (
	"math"
	"testing"

	"rossf/internal/dataset"
)

// synthCorner paints a bright square on a dark background: an
// unambiguous corner source.
func synthCorner(w, h int) []byte {
	gray := make([]byte, w*h)
	for y := h / 4; y < 3*h/4; y++ {
		for x := w / 4; x < 3*w/4; x++ {
			gray[y*w+x] = 220
		}
	}
	return gray
}

func TestFASTDetectsSquareCorners(t *testing.T) {
	const w, h = 64, 64
	gray := synthCorner(w, h)
	corners := detectFAST(gray, w, h, 24, 8, 100)
	if len(corners) == 0 {
		t.Fatal("no corners on a high-contrast square")
	}
	// Every detection must be near one of the four square corners.
	targets := [][2]int{{16, 16}, {47, 16}, {16, 47}, {47, 47}}
	for _, c := range corners {
		near := false
		for _, tg := range targets {
			dx, dy := c.X-tg[0], c.Y-tg[1]
			if dx*dx+dy*dy <= 25 {
				near = true
				break
			}
		}
		if !near {
			t.Errorf("corner at (%d,%d) is not near a square corner", c.X, c.Y)
		}
	}
}

func TestFASTIgnoresFlatImage(t *testing.T) {
	const w, h = 64, 64
	gray := make([]byte, w*h)
	for i := range gray {
		gray[i] = 128
	}
	if corners := detectFAST(gray, w, h, 24, 8, 100); len(corners) != 0 {
		t.Errorf("flat image produced %d corners", len(corners))
	}
}

func TestTrackerRecoversTranslation(t *testing.T) {
	seq, err := dataset.NewSequence(dataset.Config{
		Width: 320, Height: 240, Frames: 8, Seed: 11, StepPixels: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(Config{})
	var estX, estY float64
	for i := 0; i < 8; i++ {
		f, err := seq.Frame(i)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Process(f.RGB, 320, 240, f.Depth)
		if err != nil {
			t.Fatal(err)
		}
		estX += res.DX
		estY += res.DY
		if i > 0 && res.Matches == 0 {
			t.Fatalf("frame %d: no matches", i)
		}
	}
	wantX, wantY := seq.TrueMotion(0, 7)
	if math.Abs(estX-wantX) > 4 || math.Abs(estY-wantY) > 4 {
		t.Errorf("integrated motion = (%.1f, %.1f), truth = (%.1f, %.1f)",
			estX, estY, wantX, wantY)
	}
	if pose := tr.Pose(); math.Abs(pose.X-estX) > 1e-9 {
		t.Errorf("pose %.1f does not integrate DX sum %.1f", pose.X, estX)
	}
}

func TestPointCloudBackProjection(t *testing.T) {
	seq, _ := dataset.NewSequence(dataset.Config{Width: 160, Height: 120, Frames: 2, Seed: 2})
	tr := NewTracker(Config{})
	f, _ := seq.Frame(0)
	res, err := tr.Process(f.RGB, 160, 120, f.Depth)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points produced")
	}
	for _, p := range res.Points {
		if p.Z <= 0 || p.Z > 10 {
			t.Fatalf("implausible depth %f", p.Z)
		}
	}
}

func TestDrawDebugMarksFeatures(t *testing.T) {
	seq, _ := dataset.NewSequence(dataset.Config{Width: 160, Height: 120, Frames: 2, Seed: 2})
	tr := NewTracker(Config{})
	f, _ := seq.Frame(0)
	if _, err := tr.Process(f.RGB, 160, 120, nil); err != nil {
		t.Fatal(err)
	}
	rgb := append([]byte(nil), f.RGB...)
	n := tr.DrawDebug(rgb, 160, 120)
	if n == 0 {
		t.Fatal("no markers drawn")
	}
	// At least one pixel must have turned marker-green.
	found := false
	for i := 0; i+2 < len(rgb); i += 3 {
		if rgb[i] == 0 && rgb[i+1] == 255 && rgb[i+2] == 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no green marker pixels present")
	}
}

func TestProcessRejectsShortBuffer(t *testing.T) {
	tr := NewTracker(Config{})
	if _, err := tr.Process(make([]byte, 10), 64, 64, nil); err == nil {
		t.Error("short buffer accepted")
	}
}

func BenchmarkTrackerVGA(b *testing.B) {
	seq, err := dataset.NewSequence(dataset.Config{Width: 640, Height: 480, Frames: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	f0, _ := seq.Frame(0)
	f1, _ := seq.Frame(1)
	tr := NewTracker(Config{})
	tr.Process(f0.RGB, 640, 480, f0.Depth)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Process(f1.RGB, 640, 480, f1.Depth); err != nil {
			b.Fatal(err)
		}
	}
}
