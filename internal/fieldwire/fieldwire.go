// Package fieldwire implements selective field transmission for SFM
// messages on the network path (TZC-style partial transmission with
// subscriber-declared field masks).
//
// sfmgen emits a per-message *field wire map*: a tree of nodes mirroring
// the message's SFM skeleton, each node carrying the field's {off, len}
// range inside the skeleton plus a stable numeric ID. A subscriber
// declares the fields it reads ("header.stamp", "header.frame_id");
// the publisher resolves that mask against the map and transmits only
// the requested byte ranges — fixed skeleton ranges plus, for strings
// and sequences reachable from the mask, the variable-length payload
// their descriptors point at. The receive side materializes a sparse
// arena: transmitted ranges are copied (each under its own CRC),
// everything else is zero-filled. Because an SFM string/vector
// descriptor of all zeroes reads as empty, an unrequested field is a
// typed miss (empty/zero value), never garbage.
package fieldwire

import (
	"fmt"
	"sync"
)

// Kind classifies a field node in a wire map.
type Kind uint8

const (
	// KScalar is a fixed-size primitive (including Time/Duration, which
	// occupy 8 bytes in the skeleton).
	KScalar Kind = 1 + iota
	// KString is an 8-byte string descriptor {padded len, rel off}.
	KString
	// KVector is an 8-byte sequence descriptor {count, rel off}.
	KVector
	// KNested is an embedded message; Elem holds its named children.
	KNested
	// KArray is a fixed-length array; Elem (when present) holds one
	// unnamed pseudo-node describing a single element.
	KArray
)

// Node describes one field (or array/vector element shape) in a wire
// map. Off is relative to the enclosing node's start; Len is the
// field's skeleton footprint (descriptors count 8, not their payload).
type Node struct {
	// ID is a stable identifier: 1-based depth-first enumeration over
	// the path-addressable nodes (named fields, descending through
	// nested messages). Nodes inside an array/vector element pseudo-node
	// are not path-addressable and carry ID 0. IDs are stable as long
	// as the IDL field order is — the same condition under which the
	// MD5 is stable.
	ID       uint32
	Name     string
	Off      int
	Len      int
	Kind     Kind
	ElemSize int // KArray, KVector: skeleton size of one element
	ArrayLen int // KArray: element count
	Elem     []Node
}

// Map is the field wire map of one message type: the skeleton size and
// the top-level field nodes.
type Map struct {
	Type   string
	Size   int
	Fields []Node
}

var (
	regMu    sync.RWMutex
	registry = map[string]*Map{}
)

// Register installs the wire map for a message type. Generated code
// calls this from init; a duplicate registration is an error.
func Register(typeName string, m Map) error {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[typeName]; ok {
		return fmt.Errorf("fieldwire: duplicate map for %q", typeName)
	}
	m.Type = typeName
	registry[typeName] = &m
	return nil
}

// MapFor returns the registered wire map for a message type.
func MapFor(typeName string) (*Map, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := registry[typeName]
	return m, ok
}

// Range is a byte range inside a message's arena.
type Range struct {
	Off int
	Len int
}

// End returns the exclusive end offset.
func (r Range) End() int { return r.Off + r.Len }

// find walks a dotted field path through nested nodes and returns the
// node plus its absolute skeleton offset.
func (m *Map) find(path string) (*Node, int, error) {
	nodes, abs := m.Fields, 0
	var cur *Node
	rest := path
	for rest != "" {
		seg := rest
		if i := indexByte(rest, '.'); i >= 0 {
			seg, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		if cur != nil {
			if cur.Kind != KNested {
				return nil, 0, fmt.Errorf("%w: %q is not a nested message in %q", ErrUnknownField, cur.Name, path)
			}
			nodes = cur.Elem
		}
		cur = nil
		for i := range nodes {
			if nodes[i].Name == seg {
				cur = &nodes[i]
				break
			}
		}
		if cur == nil {
			return nil, 0, fmt.Errorf("%w: %q (at %q)", ErrUnknownField, path, seg)
		}
		abs += cur.Off
	}
	if cur == nil {
		return nil, 0, fmt.Errorf("%w: empty path", ErrUnknownField)
	}
	return cur, abs, nil
}

// RangeOf returns the absolute skeleton range of a dotted field path —
// a test and tooling hook; the hot path resolves whole masks instead.
func (m *Map) RangeOf(path string) (Range, error) {
	n, abs, err := m.find(path)
	if err != nil {
		return Range{}, err
	}
	return Range{Off: abs, Len: n.Len}, nil
}

// RangeOfID returns the absolute skeleton range and dotted path of a
// stable field ID, or false when the ID is unknown. Only statically
// addressable nodes (ID != 0) are found.
func (m *Map) RangeOfID(id uint32) (Range, string, bool) {
	if id == 0 {
		return Range{}, "", false
	}
	return rangeOfID(m.Fields, 0, "", id)
}

func rangeOfID(nodes []Node, base int, prefix string, id uint32) (Range, string, bool) {
	for i := range nodes {
		n := &nodes[i]
		if n.ID == 0 {
			continue
		}
		path := n.Name
		if prefix != "" {
			path = prefix + "." + n.Name
		}
		if n.ID == id {
			return Range{Off: base + n.Off, Len: n.Len}, path, true
		}
		if n.Kind == KNested {
			if r, p, ok := rangeOfID(n.Elem, base+n.Off, path, id); ok {
				return r, p, ok
			}
		}
	}
	return Range{}, "", false
}

// indexByte avoids importing strings for one call site.
func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}
