package fieldwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Mask resolution: a subscriber's field list becomes (a) merged fixed
// skeleton ranges and (b) the set of string/vector descriptors reachable
// from those fields, whose variable-length payloads are located per
// message at encode time by chasing the descriptor.

// Reject errors. Each maps to one per-reason obs counter via
// RejectReason; a publisher that rejects a mask answers the handshake
// with the reason string and the connection falls back to full frames.
var (
	// ErrNoMap: the publisher has no wire map for the topic's type (an
	// old build, or a raw/ROS1 publisher).
	ErrNoMap = errors.New("fieldwire: no wire map for type")
	// ErrUnknownField: a requested path does not name a field.
	ErrUnknownField = errors.New("fieldwire: unknown field")
	// ErrVarTail: a requested field contains variable-length data nested
	// inside a variable-length sequence (e.g. a vector of messages that
	// themselves hold strings). Those payloads cannot be located from
	// the skeleton alone, so the mask is rejected rather than silently
	// truncated.
	ErrVarTail = errors.New("fieldwire: variable-length tail not maskable")
)

// Reject reason strings — stable wire/obs identifiers.
const (
	ReasonNoMap       = "no_wire_map"
	ReasonUnmappable  = "unmappable_field"
	ReasonVarTail     = "variable_tail"
	ReasonUnsupported = "unsupported" // peer-reported reason we don't know
)

// RejectReason maps a Resolve error to its stable reason string.
func RejectReason(err error) string {
	switch {
	case errors.Is(err, ErrNoMap):
		return ReasonNoMap
	case errors.Is(err, ErrVarTail):
		return ReasonVarTail
	case errors.Is(err, ErrUnknownField):
		return ReasonUnmappable
	default:
		return ReasonUnsupported
	}
}

// errShortMessage reports a message smaller than the skeleton ranges the
// mask needs — a malformed publish; the frame ships whole instead.
var errShortMessage = errors.New("fieldwire: message shorter than mask ranges")

// errBadDescriptor reports a descriptor pointing outside the message.
var errBadDescriptor = errors.New("fieldwire: descriptor points outside message")

// maskDesc is one string/vector descriptor the mask must chase at
// encode time to find its payload range.
type maskDesc struct {
	off      int  // absolute skeleton offset of the 8-byte descriptor
	elemSize int  // vector element skeleton size (1 for strings)
	str      bool // string: first word is the padded byte length
}

// Mask is a resolved field mask: ready to turn any message of its type
// into a range list.
type Mask struct {
	typeName string
	paths    []string
	fixed    []Range // merged, sorted skeleton ranges
	descs    []maskDesc
}

// Type returns the message type the mask was resolved against.
func (mk *Mask) Type() string { return mk.typeName }

// Paths returns the requested field paths (normalized order preserved).
func (mk *Mask) Paths() []string { return mk.paths }

// MaxRanges bounds the number of ranges AppendRanges can produce for
// any message: the fixed ranges plus one payload range per descriptor
// (merging only ever shrinks the list). Encoders pre-size buffers with
// it.
func (mk *Mask) MaxRanges() int { return len(mk.fixed) + len(mk.descs) }

// Resolve turns a list of dotted field paths into a Mask, or a typed
// reject error (ErrUnknownField, ErrVarTail; ErrNoMap is returned by
// callers that found no map to resolve against).
func (m *Map) Resolve(paths []string) (*Mask, error) {
	if m == nil {
		return nil, ErrNoMap
	}
	mk := &Mask{typeName: m.Type}
	var fixed []Range
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		n, abs, err := m.find(p)
		if err != nil {
			return nil, err
		}
		if n.Len > 0 {
			fixed = append(fixed, Range{Off: abs, Len: n.Len})
		}
		if err := collectDescs(n, abs, &mk.descs); err != nil {
			return nil, fmt.Errorf("%w (field %q)", err, p)
		}
		mk.paths = append(mk.paths, p)
	}
	if len(mk.paths) == 0 {
		return nil, fmt.Errorf("%w: empty field list", ErrUnknownField)
	}
	mk.fixed = mergeRanges(fixed)
	mk.descs = dedupeDescs(mk.descs)
	return mk, nil
}

// collectDescs gathers every string/vector descriptor inside node n
// (absolute offset abs), erroring with ErrVarTail when a descriptor
// hides inside a vector element (its payload location is per-element
// dynamic state the skeleton cannot address).
func collectDescs(n *Node, abs int, out *[]maskDesc) error {
	switch n.Kind {
	case KScalar:
	case KString:
		*out = append(*out, maskDesc{off: abs, elemSize: 1, str: true})
	case KVector:
		if len(n.Elem) > 0 && subtreeHasDescs(&n.Elem[0]) {
			return ErrVarTail
		}
		es := n.ElemSize
		if es <= 0 {
			es = 1
		}
		*out = append(*out, maskDesc{off: abs, elemSize: es})
	case KNested:
		for i := range n.Elem {
			c := &n.Elem[i]
			if err := collectDescs(c, abs+c.Off, out); err != nil {
				return err
			}
		}
	case KArray:
		if len(n.Elem) == 0 {
			return nil // scalar elements: the fixed range covers them
		}
		e := &n.Elem[0]
		for i := 0; i < n.ArrayLen; i++ {
			if err := collectDescs(e, abs+i*n.ElemSize, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// subtreeHasDescs reports whether a node's subtree contains any
// string/vector descriptor.
func subtreeHasDescs(n *Node) bool {
	switch n.Kind {
	case KString, KVector:
		return true
	case KNested, KArray:
		for i := range n.Elem {
			if subtreeHasDescs(&n.Elem[i]) {
				return true
			}
		}
	}
	return false
}

// AppendRanges appends the byte ranges of msg selected by the mask to
// dst (which callers reuse across messages) and returns the sorted,
// merged list. An error means this message cannot be sliced (short
// buffer, descriptor out of bounds) — the caller ships it whole.
func (mk *Mask) AppendRanges(dst []Range, msg []byte) ([]Range, error) {
	for _, r := range mk.fixed {
		if r.End() > len(msg) {
			return dst, errShortMessage
		}
		dst = append(dst, r)
	}
	for _, d := range mk.descs {
		if d.off+8 > len(msg) {
			return dst, errShortMessage
		}
		count := binary.NativeEndian.Uint32(msg[d.off:])
		if count == 0 {
			continue // empty string/vector: nothing beyond the descriptor
		}
		rel := binary.NativeEndian.Uint32(msg[d.off+4:])
		plen := int64(count) * int64(d.elemSize)
		start := int64(d.off) + int64(rel)
		if start < int64(d.off)+8 || start+plen > int64(len(msg)) {
			return dst, errBadDescriptor
		}
		dst = append(dst, Range{Off: int(start), Len: int(plen)})
	}
	return mergeRanges(dst), nil
}

// mergeRanges sorts ranges by offset and merges overlapping or
// adjacent ones in place. Insertion sort keeps the per-message encode
// path allocation-free; range lists are small (one per mask field plus
// one per reachable descriptor) and usually already ordered.
func mergeRanges(rs []Range) []Range {
	if len(rs) < 2 {
		return rs
	}
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Off < rs[j-1].Off; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Off <= last.End() {
			if r.End() > last.End() {
				last.Len = r.End() - last.Off
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// dedupeDescs drops duplicate descriptor offsets (a mask naming both
// "header" and "header.frame_id" reaches the same descriptor twice).
func dedupeDescs(ds []maskDesc) []maskDesc {
	if len(ds) < 2 {
		return ds
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].off < ds[j].off })
	out := ds[:1]
	for _, d := range ds[1:] {
		if d.off == out[len(out)-1].off {
			continue
		}
		out = append(out, d)
	}
	return out
}
