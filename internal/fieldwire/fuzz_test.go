package fieldwire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzSparseDecoder drives arbitrary bytes through Parse+Materialize
// and checks the decoder's safety contract: it never panics, never
// accepts a payload that would mis-slice (every materialized byte must
// come from a table-declared range of the payload, everything else must
// be zero), and never materializes beyond the declared cap.
func FuzzSparseDecoder(f *testing.F) {
	msg := testMsg()
	f.Add(encodeSparse(len(msg), []Range{{8, 16}, {72, 8}}, msg))
	f.Add(encodeSparse(len(msg), []Range{{0, 96}}, msg))
	f.Add(append(AppendFullTable(nil, len(msg)), msg...))
	f.Add(AppendHeader(nil, 0, 0, 0))
	f.Add([]byte("RSFP"))
	f.Add([]byte{})
	damaged := encodeSparse(len(msg), []Range{{8, 16}, {72, 8}}, msg)
	damaged[HeaderSize+4] ^= 0x40
	f.Add(damaged)

	const maxFull = 1 << 16
	f.Fuzz(func(t *testing.T, payload []byte) {
		var dec Decoder
		fullSize, err := dec.Parse(payload, maxFull)
		if err != nil {
			return // rejected: that's a safe outcome
		}
		if fullSize > maxFull || fullSize < 0 {
			t.Fatalf("Parse accepted fullSize %d beyond cap", fullSize)
		}
		dst := make([]byte, fullSize)
		for i := range dst {
			dst[i] = 0xEE
		}
		if err := dec.Materialize(payload, dst); err != nil {
			return // per-range CRC reject: safe
		}
		// Independently re-read the table and verify dst byte-for-byte.
		flags := payload[5]
		n := int(binary.LittleEndian.Uint16(payload[6:8]))
		if flags&FlagFull != 0 {
			if !bytes.Equal(dst, payload[HeaderSize:]) {
				t.Fatal("full payload materialized incorrectly")
			}
			return
		}
		covered := make([]bool, fullSize)
		cursor := TableLen(n)
		for i := 0; i < n; i++ {
			e := payload[HeaderSize+i*RangeSize:]
			off := int(binary.LittleEndian.Uint32(e[0:4]))
			l := int(binary.LittleEndian.Uint32(e[4:8]))
			if !bytes.Equal(dst[off:off+l], payload[cursor:cursor+l]) {
				t.Fatalf("range %d mis-sliced", i)
			}
			for j := off; j < off+l; j++ {
				covered[j] = true
			}
			cursor += l
		}
		for i, c := range covered {
			if !c && dst[i] != 0 {
				t.Fatalf("uncovered byte %d = %#x, want zero", i, dst[i])
			}
		}
	})
}
