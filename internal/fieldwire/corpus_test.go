package fieldwire_test

import (
	"fmt"
	"testing"

	"rossf/internal/core"
	"rossf/internal/fieldwire"
	"rossf/msgs/geometry_msgs"
	"rossf/msgs/sensor_msgs"
	"rossf/msgs/std_msgs"
	"rossf/msgs/stereo_msgs"
)

// The corpus test cross-validates the generated field wire maps (emitted
// by sfmgen from the spec-driven SFMLayout) against the reflection-
// derived core.Layout of the generated structs: same field order, same
// offsets, same skeleton footprints, across nested messages, fixed
// arrays, strings, and sequences. Field names differ by design (wire
// maps use ROS snake_case, reflection sees Go names), so the comparison
// is positional.

func corpusLayout[T any](t *testing.T, name string) (*fieldwire.Map, *core.Layout) {
	t.Helper()
	m, ok := fieldwire.MapFor(name)
	if !ok {
		t.Fatalf("no wire map registered for %s", name)
	}
	l, err := core.LayoutOf[T]()
	if err != nil {
		t.Fatalf("core.LayoutOf(%s): %v", name, err)
	}
	return m, l
}

// matchNodes positionally compares wire-map nodes with reflection
// fields at a common base offset.
func matchNodes(t *testing.T, path string, nodes []fieldwire.Node, fields []core.Field) {
	t.Helper()
	if len(nodes) != len(fields) {
		t.Fatalf("%s: %d wire-map nodes vs %d reflected fields", path, len(nodes), len(fields))
	}
	for i := range nodes {
		n, f := &nodes[i], &fields[i]
		at := fmt.Sprintf("%s.%s(%s)", path, n.Name, f.Name)
		if n.Off != int(f.Off) {
			t.Fatalf("%s: off %d vs %d", at, n.Off, f.Off)
		}
		switch n.Kind {
		case fieldwire.KScalar:
			// Time/Duration are 8-byte scalars in the wire map but
			// two-word nested structs under reflection.
			switch f.Kind {
			case core.KindScalar:
				if n.Len != int(f.Size) {
					t.Fatalf("%s: scalar len %d vs %d", at, n.Len, f.Size)
				}
			case core.KindNested:
				if n.Len != int(f.Elem.Size) {
					t.Fatalf("%s: scalar len %d vs nested size %d", at, n.Len, f.Elem.Size)
				}
			default:
				t.Fatalf("%s: KScalar vs reflected kind %d", at, f.Kind)
			}
		case fieldwire.KString:
			if f.Kind != core.KindString || n.Len != 8 {
				t.Fatalf("%s: KString len %d vs kind %d", at, n.Len, f.Kind)
			}
		case fieldwire.KVector:
			if f.Kind != core.KindVector || n.Len != 8 {
				t.Fatalf("%s: KVector len %d vs kind %d", at, n.Len, f.Kind)
			}
			if f.Elem != nil && n.ElemSize != int(f.Elem.Size) {
				t.Fatalf("%s: vector elem size %d vs %d", at, n.ElemSize, f.Elem.Size)
			}
		case fieldwire.KNested:
			if f.Kind != core.KindNested {
				t.Fatalf("%s: KNested vs reflected kind %d", at, f.Kind)
			}
			if n.Len != int(f.Elem.Size) {
				t.Fatalf("%s: nested len %d vs %d", at, n.Len, f.Elem.Size)
			}
			matchNodes(t, at, n.Elem, f.Elem.Fields)
		case fieldwire.KArray:
			if f.Kind != core.KindArray {
				t.Fatalf("%s: KArray vs reflected kind %d", at, f.Kind)
			}
			if n.ArrayLen != f.Len || n.ElemSize != int(f.Elem.Size) {
				t.Fatalf("%s: array %dx%d vs %dx%d", at, n.ArrayLen, n.ElemSize, f.Len, f.Elem.Size)
			}
			if len(n.Elem) == 1 && n.Elem[0].Kind == fieldwire.KNested && !f.Elem.Scalar {
				matchNodes(t, at+"[]", n.Elem[0].Elem, f.Elem.Fields)
			}
		default:
			t.Fatalf("%s: unknown wire-map kind %d", at, n.Kind)
		}
	}
}

func checkType[T any](t *testing.T, name string) {
	t.Run(name, func(t *testing.T) {
		m, l := corpusLayout[T](t, name)
		if m.Size != int(l.Size) {
			t.Fatalf("%s: map size %d vs reflected %d", name, m.Size, l.Size)
		}
		matchNodes(t, name, m.Fields, l.Fields)
	})
}

func TestWireMapsMatchReflectedLayouts(t *testing.T) {
	checkType[std_msgs.HeaderSF](t, "std_msgs/Header")
	checkType[std_msgs.StringSF](t, "std_msgs/String")
	checkType[sensor_msgs.ImageSF](t, "sensor_msgs/Image")
	checkType[sensor_msgs.CameraInfoSF](t, "sensor_msgs/CameraInfo")
	checkType[sensor_msgs.PointCloudSF](t, "sensor_msgs/PointCloud")
	checkType[sensor_msgs.PointCloud2SF](t, "sensor_msgs/PointCloud2")
	checkType[sensor_msgs.LaserScanSF](t, "sensor_msgs/LaserScan")
	checkType[geometry_msgs.PoseStampedSF](t, "geometry_msgs/PoseStamped")
	checkType[geometry_msgs.PoseWithCovarianceSF](t, "geometry_msgs/PoseWithCovariance")
	checkType[stereo_msgs.DisparityImageSF](t, "stereo_msgs/DisparityImage")
}

// TestWireMapIDsRoundTrip walks every registered path-addressable node
// and checks ID→range→path→range closure, plus ID density (1..N with no
// gaps — the enumeration the stability contract is defined over).
func TestWireMapIDsRoundTrip(t *testing.T) {
	for _, name := range []string{
		"std_msgs/Header",
		"sensor_msgs/Image",
		"sensor_msgs/CameraInfo",
		"sensor_msgs/PointCloud",
		"geometry_msgs/PoseStamped",
		"stereo_msgs/DisparityImage",
	} {
		m, ok := fieldwire.MapFor(name)
		if !ok {
			t.Fatalf("no wire map for %s", name)
		}
		var walk func(nodes []fieldwire.Node, prefix string)
		seen := map[uint32]string{}
		walk = func(nodes []fieldwire.Node, prefix string) {
			for i := range nodes {
				n := &nodes[i]
				path := n.Name
				if prefix != "" {
					path = prefix + "." + n.Name
				}
				if n.ID == 0 {
					t.Fatalf("%s: addressable node %s has ID 0", name, path)
				}
				if prev, dup := seen[n.ID]; dup {
					t.Fatalf("%s: ID %d reused by %s and %s", name, n.ID, prev, path)
				}
				seen[n.ID] = path
				r, gotPath, ok := m.RangeOfID(n.ID)
				if !ok || gotPath != path {
					t.Fatalf("%s: RangeOfID(%d) = %q, %v; want %q", name, n.ID, gotPath, ok, path)
				}
				byPath, err := m.RangeOf(path)
				if err != nil || byPath != r {
					t.Fatalf("%s: RangeOf(%s) = %+v (%v), RangeOfID = %+v", name, path, byPath, err, r)
				}
				if n.Kind == fieldwire.KNested {
					walk(n.Elem, path)
				}
			}
		}
		walk(m.Fields, "")
		for id := uint32(1); id <= uint32(len(seen)); id++ {
			if _, ok := seen[id]; !ok {
				t.Fatalf("%s: ID space has a gap at %d (total %d)", name, id, len(seen))
			}
		}
	}
}

// TestWireMapKnownRanges pins a few hand-computed ranges so a silent
// layout change in either computation trips something human-readable.
func TestWireMapKnownRanges(t *testing.T) {
	img, ok := fieldwire.MapFor("sensor_msgs/Image")
	if !ok {
		t.Fatal("no wire map for sensor_msgs/Image")
	}
	for _, c := range []struct {
		path string
		want fieldwire.Range
	}{
		{"header", fieldwire.Range{Off: 0, Len: 20}},
		{"header.seq", fieldwire.Range{Off: 0, Len: 4}},
		{"header.stamp", fieldwire.Range{Off: 4, Len: 8}},
		{"header.frame_id", fieldwire.Range{Off: 12, Len: 8}},
		{"height", fieldwire.Range{Off: 20, Len: 4}},
		{"data", fieldwire.Range{Off: 44, Len: 8}},
	} {
		got, err := img.RangeOf(c.path)
		if err != nil {
			t.Fatalf("RangeOf(%s): %v", c.path, err)
		}
		if got != c.want {
			t.Fatalf("RangeOf(%s) = %+v, want %+v", c.path, got, c.want)
		}
	}
	// CameraInfo: fixed float64 arrays (D is a sequence, K/R/P fixed).
	ci, ok := fieldwire.MapFor("sensor_msgs/CameraInfo")
	if !ok {
		t.Fatal("no wire map for sensor_msgs/CameraInfo")
	}
	k, err := ci.RangeOf("K")
	if err != nil {
		t.Fatalf("RangeOf(K): %v", err)
	}
	if k.Len != 9*8 {
		t.Fatalf("K len = %d, want 72", k.Len)
	}
}
