package fieldwire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rossf/internal/wire"
)

// Sparse frame payload layout. A connection that negotiated a field
// mask frames messages exactly like a plain TCP connection (RSFM
// header, outer CRC over the whole payload), but the payload is a
// sparse encoding instead of the raw arena:
//
//	offset 0   u32  magic ("RSFP", little-endian)
//	offset 4   u8   version (1)
//	offset 5   u8   flags (FlagFull)
//	offset 6   u16  range count
//	offset 8   u32  full message size
//	offset 12  range table: rangeCount × {u32 off, u32 len, u32 crc}
//	...        range payloads, concatenated in table order
//
// Each table entry carries the CRC-32C of its payload bytes, so the
// receiver verifies every copied range independently before adopting
// the materialized arena. A FlagFull payload has rangeCount == 0 and
// carries the complete message after the header — the per-message
// fallback a masked connection uses when a message cannot be sliced
// (or slicing would not save bytes), keeping decode uniform.
const (
	// SparseMagic marks a sparse payload ("RSFP" little-endian).
	SparseMagic uint32 = 'R' | 'S'<<8 | 'F'<<16 | 'P'<<24
	// SparseVersion is the current encoding version.
	SparseVersion = 1
	// HeaderSize is the fixed sparse-payload header length.
	HeaderSize = 12
	// RangeSize is the length of one range-table entry.
	RangeSize = 12
	// FlagFull marks a payload carrying the complete message.
	FlagFull = 0x01
	// MaxRanges bounds a decodable range table; masks resolve to far
	// fewer, so anything larger is damage.
	MaxRanges = 4096
)

// TableLen returns the length of a sparse header plus an n-entry range
// table.
func TableLen(n int) int { return HeaderSize + n*RangeSize }

// ErrSparse reports a malformed sparse payload; wrapped by every decode
// failure.
var ErrSparse = errors.New("fieldwire: malformed sparse payload")

// ErrRangeCRC reports a range whose payload failed its table CRC.
var ErrRangeCRC = fmt.Errorf("%w: range checksum mismatch", ErrSparse)

// AppendHeader appends a sparse header to dst.
func AppendHeader(dst []byte, flags byte, rangeCount, fullSize int) []byte {
	var h [HeaderSize]byte
	binary.LittleEndian.PutUint32(h[0:4], SparseMagic)
	h[4] = SparseVersion
	h[5] = flags
	binary.LittleEndian.PutUint16(h[6:8], uint16(rangeCount))
	binary.LittleEndian.PutUint32(h[8:12], uint32(fullSize))
	return append(dst, h[:]...)
}

// AppendTable appends the header and range table for a masked message:
// per-range CRCs are computed here over msg's bytes. The range payloads
// themselves are NOT appended — encoders ship them as separate write
// vectors straight from the arena.
func AppendTable(dst []byte, fullSize int, ranges []Range, msg []byte) []byte {
	dst = AppendHeader(dst, 0, len(ranges), fullSize)
	var e [RangeSize]byte
	for _, r := range ranges {
		binary.LittleEndian.PutUint32(e[0:4], uint32(r.Off))
		binary.LittleEndian.PutUint32(e[4:8], uint32(r.Len))
		binary.LittleEndian.PutUint32(e[8:12], wire.Checksum(msg[r.Off:r.End()]))
		dst = append(dst, e[:]...)
	}
	return dst
}

// AppendFullTable appends the header of a FlagFull payload (the message
// bytes follow as their own write vector; the outer frame CRC covers
// them).
func AppendFullTable(dst []byte, fullSize int) []byte {
	return AppendHeader(dst, FlagFull, 0, fullSize)
}

// Decoder validates and materializes sparse payloads. It is reusable
// per connection; the parsed range list persists between Parse and
// Materialize.
type Decoder struct {
	full     bool
	fullSize int
	tableLen int
	ranges   []sparseRange
}

type sparseRange struct {
	off, len int
	crc      uint32
}

// Parse validates a sparse payload's header and range table and returns
// the full (materialized) message size. It checks everything that can
// be checked without touching range bytes: magic, version, unknown
// flags, table bounds, strictly increasing non-overlapping in-bounds
// ranges, and that the payload length equals the table plus the ranges
// exactly. maxFull bounds the materialized size (the transport's frame
// cap). Any error means the frame is damage — the caller drops it (and
// after repeated failures falls back to full-frame framing).
func (d *Decoder) Parse(payload []byte, maxFull int) (int, error) {
	d.full, d.fullSize, d.tableLen, d.ranges = false, 0, 0, d.ranges[:0]
	if len(payload) < HeaderSize {
		return 0, fmt.Errorf("%w: short header (%d bytes)", ErrSparse, len(payload))
	}
	if binary.LittleEndian.Uint32(payload[0:4]) != SparseMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrSparse)
	}
	if v := payload[4]; v != SparseVersion {
		return 0, fmt.Errorf("%w: unknown version %d", ErrSparse, v)
	}
	flags := payload[5]
	if flags&^byte(FlagFull) != 0 {
		return 0, fmt.Errorf("%w: unknown flags %#x", ErrSparse, flags)
	}
	n := int(binary.LittleEndian.Uint16(payload[6:8]))
	fullSize := int(binary.LittleEndian.Uint32(payload[8:12]))
	if fullSize < 0 || fullSize > maxFull {
		return 0, fmt.Errorf("%w: full size %d exceeds limit %d", ErrSparse, fullSize, maxFull)
	}
	if flags&FlagFull != 0 {
		if n != 0 {
			return 0, fmt.Errorf("%w: full payload with %d ranges", ErrSparse, n)
		}
		if len(payload)-HeaderSize != fullSize {
			return 0, fmt.Errorf("%w: full payload length %d != size %d", ErrSparse, len(payload)-HeaderSize, fullSize)
		}
		d.full, d.fullSize, d.tableLen = true, fullSize, HeaderSize
		return fullSize, nil
	}
	if n > MaxRanges {
		return 0, fmt.Errorf("%w: %d ranges exceeds limit", ErrSparse, n)
	}
	tl := TableLen(n)
	if len(payload) < tl {
		return 0, fmt.Errorf("%w: truncated range table", ErrSparse)
	}
	prevEnd, sum := 0, 0
	for i := 0; i < n; i++ {
		e := payload[HeaderSize+i*RangeSize:]
		off := int(binary.LittleEndian.Uint32(e[0:4]))
		l := int(binary.LittleEndian.Uint32(e[4:8]))
		crc := binary.LittleEndian.Uint32(e[8:12])
		if l <= 0 || off < prevEnd || int64(off)+int64(l) > int64(fullSize) {
			return 0, fmt.Errorf("%w: range %d [%d,%d) invalid (prev end %d, full %d)",
				ErrSparse, i, off, off+l, prevEnd, fullSize)
		}
		prevEnd = off + l
		sum += l
		d.ranges = append(d.ranges, sparseRange{off: off, len: l, crc: crc})
	}
	if len(payload)-tl != sum {
		return 0, fmt.Errorf("%w: payload carries %d range bytes, table claims %d", ErrSparse, len(payload)-tl, sum)
	}
	d.fullSize, d.tableLen = fullSize, tl
	return fullSize, nil
}

// Materialize copies the parsed ranges of payload into dst (which must
// be exactly the full size Parse returned), zero-filling every
// untransmitted gap, and verifies each range against its table CRC
// before returning. On error dst is partially written and must be
// discarded. For a FlagFull payload the message is copied whole (the
// outer frame CRC already covered it).
func (d *Decoder) Materialize(payload, dst []byte) error {
	if len(dst) != d.fullSize {
		return fmt.Errorf("%w: destination %d bytes, need %d", ErrSparse, len(dst), d.fullSize)
	}
	if d.full {
		copy(dst, payload[HeaderSize:])
		return nil
	}
	cursor, prev := d.tableLen, 0
	for i, r := range d.ranges {
		b := payload[cursor : cursor+r.len]
		if wire.Checksum(b) != r.crc {
			return fmt.Errorf("%w (range %d)", ErrRangeCRC, i)
		}
		clear(dst[prev:r.off])
		copy(dst[r.off:], b)
		cursor, prev = cursor+r.len, r.off+r.len
	}
	clear(dst[prev:])
	return nil
}
