package fieldwire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// testMap builds a hand-written wire map shaped like a small
// sensor-style message:
//
//	Header { seq u32 @0; stamp time @8; frame_id string @16 }  (size 24)
//	Img {
//	  header Header @0            (len 24)
//	  height u32    @24
//	  width  u32    @28
//	  data   u8[]   @32           (vector descriptor)
//	  pts    Point[2] @40         (Point{x f64, y f64}, 16 bytes each)
//	}                              (size 72)
func testMap() *Map {
	point := []Node{
		{ID: 0, Name: "x", Off: 0, Len: 8, Kind: KScalar},
		{ID: 0, Name: "y", Off: 8, Len: 8, Kind: KScalar},
	}
	return &Map{
		Type: "test_msgs/Img",
		Size: 72,
		Fields: []Node{
			{ID: 1, Name: "header", Off: 0, Len: 24, Kind: KNested, Elem: []Node{
				{ID: 2, Name: "seq", Off: 0, Len: 4, Kind: KScalar},
				{ID: 3, Name: "stamp", Off: 8, Len: 8, Kind: KScalar},
				{ID: 4, Name: "frame_id", Off: 16, Len: 8, Kind: KString},
			}},
			{ID: 5, Name: "height", Off: 24, Len: 4, Kind: KScalar},
			{ID: 6, Name: "width", Off: 28, Len: 4, Kind: KScalar},
			{ID: 7, Name: "data", Off: 32, Len: 8, Kind: KVector, ElemSize: 1},
			{ID: 8, Name: "pts", Off: 40, Len: 32, Kind: KArray, ElemSize: 16, ArrayLen: 2,
				Elem: []Node{{Kind: KNested, Len: 16, Elem: point}}},
		},
	}
}

// testMsg builds an arena image matching testMap: 72-byte skeleton,
// frame_id payload ("cam0" padded to 8) at 72, data payload (16 bytes)
// at 80. Total 96 bytes.
func testMsg() []byte {
	msg := make([]byte, 96)
	le := binary.NativeEndian
	le.PutUint32(msg[0:], 7)                  // header.seq
	le.PutUint64(msg[8:], 0x1122334455667788) // header.stamp
	le.PutUint32(msg[16:], 8)                 // frame_id padded len
	le.PutUint32(msg[20:], 72-16)             // frame_id rel off
	copy(msg[72:], "cam0\x00\x00\x00\x00")
	le.PutUint32(msg[24:], 480)   // height
	le.PutUint32(msg[28:], 640)   // width
	le.PutUint32(msg[32:], 16)    // data count
	le.PutUint32(msg[36:], 80-32) // data rel off
	for i := 0; i < 16; i++ {
		msg[80+i] = byte(0xA0 + i)
	}
	for i := 0; i < 32; i++ {
		msg[40+i] = byte(i) // pts raw bytes
	}
	return msg
}

func TestRangeOfPaths(t *testing.T) {
	m := testMap()
	cases := []struct {
		path string
		want Range
	}{
		{"header", Range{0, 24}},
		{"header.seq", Range{0, 4}},
		{"header.stamp", Range{8, 8}},
		{"header.frame_id", Range{16, 8}},
		{"height", Range{24, 4}},
		{"data", Range{32, 8}},
		{"pts", Range{40, 32}},
	}
	for _, c := range cases {
		got, err := m.RangeOf(c.path)
		if err != nil {
			t.Fatalf("RangeOf(%q): %v", c.path, err)
		}
		if got != c.want {
			t.Fatalf("RangeOf(%q) = %+v, want %+v", c.path, got, c.want)
		}
	}
	if _, err := m.RangeOf("nope"); !errors.Is(err, ErrUnknownField) {
		t.Fatalf("RangeOf(nope) err = %v, want ErrUnknownField", err)
	}
	if _, err := m.RangeOf("height.x"); !errors.Is(err, ErrUnknownField) {
		t.Fatalf("RangeOf(height.x) err = %v, want ErrUnknownField", err)
	}
}

func TestRangeOfIDRoundTrip(t *testing.T) {
	m := testMap()
	for id := uint32(1); id <= 8; id++ {
		r, path, ok := m.RangeOfID(id)
		if !ok {
			t.Fatalf("RangeOfID(%d) not found", id)
		}
		byPath, err := m.RangeOf(path)
		if err != nil {
			t.Fatalf("RangeOf(%q): %v", path, err)
		}
		if r != byPath {
			t.Fatalf("ID %d (%s): range %+v != by-path %+v", id, path, r, byPath)
		}
	}
	if _, _, ok := m.RangeOfID(0); ok {
		t.Fatal("RangeOfID(0) should not resolve")
	}
	if _, _, ok := m.RangeOfID(99); ok {
		t.Fatal("RangeOfID(99) should not resolve")
	}
}

func TestResolveMergesAndChasesDescriptors(t *testing.T) {
	m := testMap()
	mk, err := m.Resolve([]string{"header.stamp", "header.frame_id"})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	// stamp {8,8} and frame_id {16,8} are adjacent: one fixed range.
	if len(mk.fixed) != 1 || mk.fixed[0] != (Range{8, 16}) {
		t.Fatalf("fixed = %+v, want [{8 16}]", mk.fixed)
	}
	msg := testMsg()
	ranges, err := mk.AppendRanges(nil, msg)
	if err != nil {
		t.Fatalf("AppendRanges: %v", err)
	}
	want := []Range{{8, 16}, {72, 8}}
	if len(ranges) != len(want) {
		t.Fatalf("ranges = %+v, want %+v", ranges, want)
	}
	for i := range want {
		if ranges[i] != want[i] {
			t.Fatalf("ranges = %+v, want %+v", ranges, want)
		}
	}
	if mk.MaxRanges() < len(ranges) {
		t.Fatalf("MaxRanges %d < produced %d", mk.MaxRanges(), len(ranges))
	}
}

func TestResolveOverlapAndDedupe(t *testing.T) {
	m := testMap()
	// "header" subsumes "header.stamp"; the frame_id descriptor is
	// reachable from both paths but must be chased once.
	mk, err := m.Resolve([]string{"header", "header.stamp"})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(mk.fixed) != 1 || mk.fixed[0] != (Range{0, 24}) {
		t.Fatalf("fixed = %+v, want [{0 24}]", mk.fixed)
	}
	if len(mk.descs) != 1 {
		t.Fatalf("descs = %+v, want one (frame_id)", mk.descs)
	}
}

func TestResolveVectorPayload(t *testing.T) {
	m := testMap()
	mk, err := m.Resolve([]string{"data"})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	ranges, err := mk.AppendRanges(nil, testMsg())
	if err != nil {
		t.Fatalf("AppendRanges: %v", err)
	}
	want := []Range{{32, 8}, {80, 16}}
	if len(ranges) != 2 || ranges[0] != want[0] || ranges[1] != want[1] {
		t.Fatalf("ranges = %+v, want %+v", ranges, want)
	}
}

func TestResolveEmptyDescriptorSkipsPayload(t *testing.T) {
	m := testMap()
	mk, err := m.Resolve([]string{"header.frame_id"})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	msg := testMsg()
	binary.NativeEndian.PutUint32(msg[16:], 0) // empty frame_id
	ranges, err := mk.AppendRanges(nil, msg)
	if err != nil {
		t.Fatalf("AppendRanges: %v", err)
	}
	if len(ranges) != 1 || ranges[0] != (Range{16, 8}) {
		t.Fatalf("ranges = %+v, want just the descriptor", ranges)
	}
}

func TestResolveRejects(t *testing.T) {
	m := testMap()
	if _, err := m.Resolve([]string{"missing"}); !errors.Is(err, ErrUnknownField) {
		t.Fatalf("unknown field err = %v", err)
	}
	if _, err := m.Resolve(nil); !errors.Is(err, ErrUnknownField) {
		t.Fatalf("empty list err = %v", err)
	}
	var nilMap *Map
	if _, err := nilMap.Resolve([]string{"x"}); !errors.Is(err, ErrNoMap) {
		t.Fatalf("nil map err = %v", err)
	}
	// A vector whose elements hold strings cannot be masked.
	vt := &Map{Type: "t/V", Size: 8, Fields: []Node{
		{ID: 1, Name: "names", Off: 0, Len: 8, Kind: KVector, ElemSize: 8,
			Elem: []Node{{Kind: KString, Len: 8}}},
	}}
	if _, err := vt.Resolve([]string{"names"}); !errors.Is(err, ErrVarTail) {
		t.Fatalf("var tail err = %v", err)
	}
	if got := RejectReason(ErrNoMap); got != ReasonNoMap {
		t.Fatalf("reason = %q", got)
	}
	if got := RejectReason(ErrVarTail); got != ReasonVarTail {
		t.Fatalf("reason = %q", got)
	}
	if got := RejectReason(ErrUnknownField); got != ReasonUnmappable {
		t.Fatalf("reason = %q", got)
	}
}

func TestAppendRangesBadDescriptor(t *testing.T) {
	m := testMap()
	mk, err := m.Resolve([]string{"data"})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	msg := testMsg()
	binary.NativeEndian.PutUint32(msg[36:], 1<<30) // rel off out of bounds
	if _, err := mk.AppendRanges(nil, msg); err == nil {
		t.Fatal("expected descriptor bounds error")
	}
	short := testMsg()[:16]
	if _, err := mk.AppendRanges(nil, short); err == nil {
		t.Fatal("expected short-message error")
	}
}

// encodeSparse builds a complete sparse payload (table + range bytes)
// the way the egress path lays it out on the wire.
func encodeSparse(fullSize int, ranges []Range, msg []byte) []byte {
	p := AppendTable(nil, fullSize, ranges, msg)
	for _, r := range ranges {
		p = append(p, msg[r.Off:r.End()]...)
	}
	return p
}

func TestSparseRoundTrip(t *testing.T) {
	m := testMap()
	mk, err := m.Resolve([]string{"header.stamp", "header.frame_id"})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	msg := testMsg()
	ranges, err := mk.AppendRanges(nil, msg)
	if err != nil {
		t.Fatalf("AppendRanges: %v", err)
	}
	payload := encodeSparse(len(msg), ranges, msg)
	var dec Decoder
	fullSize, err := dec.Parse(payload, 1<<20)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if fullSize != len(msg) {
		t.Fatalf("fullSize = %d, want %d", fullSize, len(msg))
	}
	dst := make([]byte, fullSize)
	for i := range dst {
		dst[i] = 0xFF // materialize must overwrite every byte
	}
	if err := dec.Materialize(payload, dst); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	// Transmitted: stamp+frame_id descriptor region and string payload.
	if !bytes.Equal(dst[8:24], msg[8:24]) || !bytes.Equal(dst[72:80], msg[72:80]) {
		t.Fatal("transmitted ranges differ")
	}
	// Typed miss: untransmitted regions are zero — seq, height, width,
	// and the data vector descriptor all read as zero/empty.
	for _, off := range []int{0, 24, 28, 32, 36, 40, 80} {
		if binary.NativeEndian.Uint32(dst[off:]) != 0 {
			t.Fatalf("offset %d not zeroed: %x", off, dst[off:off+4])
		}
	}
}

func TestSparseFullRoundTrip(t *testing.T) {
	msg := testMsg()
	payload := AppendFullTable(nil, len(msg))
	payload = append(payload, msg...)
	var dec Decoder
	fullSize, err := dec.Parse(payload, 1<<20)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	dst := make([]byte, fullSize)
	if err := dec.Materialize(payload, dst); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if !bytes.Equal(dst, msg) {
		t.Fatal("full payload round trip differs")
	}
}

func TestSparseParseRejects(t *testing.T) {
	msg := testMsg()
	good := encodeSparse(len(msg), []Range{{8, 16}, {72, 8}}, msg)
	var dec Decoder

	corrupt := func(name string, mutate func(p []byte) []byte) {
		p := mutate(append([]byte(nil), good...))
		if _, err := dec.Parse(p, 1<<20); err == nil {
			t.Fatalf("%s: Parse accepted damage", name)
		}
	}
	corrupt("bad magic", func(p []byte) []byte { p[0] ^= 0xFF; return p })
	corrupt("bad version", func(p []byte) []byte { p[4] = 9; return p })
	corrupt("unknown flags", func(p []byte) []byte { p[5] = 0x80; return p })
	corrupt("short header", func(p []byte) []byte { return p[:8] })
	corrupt("truncated table", func(p []byte) []byte { return p[:HeaderSize+4] })
	corrupt("oversized full", func(p []byte) []byte {
		binary.LittleEndian.PutUint32(p[8:12], 1<<31-1)
		return p
	})
	corrupt("zero-length range", func(p []byte) []byte {
		binary.LittleEndian.PutUint32(p[HeaderSize+4:], 0)
		return p
	})
	corrupt("overlapping ranges", func(p []byte) []byte {
		// Second range starts before the first ends.
		binary.LittleEndian.PutUint32(p[HeaderSize+RangeSize:], 10)
		return p
	})
	corrupt("range out of bounds", func(p []byte) []byte {
		binary.LittleEndian.PutUint32(p[HeaderSize+RangeSize:], 95)
		return p
	})
	corrupt("length mismatch", func(p []byte) []byte { return p[:len(p)-1] })
	corrupt("trailing bytes", func(p []byte) []byte { return append(p, 0) })
	corrupt("full with ranges", func(p []byte) []byte { p[5] = FlagFull; return p })

	// Range CRC damage parses but fails Materialize.
	p := append([]byte(nil), good...)
	p[len(p)-1] ^= 0xFF
	n, err := dec.Parse(p, 1<<20)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := dec.Materialize(p, make([]byte, n)); !errors.Is(err, ErrRangeCRC) {
		t.Fatalf("Materialize err = %v, want ErrRangeCRC", err)
	}

	// Too many ranges.
	huge := AppendHeader(nil, 0, MaxRanges+1, 64)
	if _, err := dec.Parse(huge, 1<<20); err == nil {
		t.Fatal("accepted oversized range count")
	}

	// Full-size above the caller's cap.
	if _, err := dec.Parse(good, 8); err == nil {
		t.Fatal("accepted full size above cap")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	name := "fieldwire_test/Dup"
	if err := Register(name, *testMap()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := Register(name, *testMap()); err == nil {
		t.Fatal("duplicate Register accepted")
	}
	if m, ok := MapFor(name); !ok || m.Size != 72 {
		t.Fatalf("MapFor = %+v, %v", m, ok)
	}
}
