package chaostest

import (
	"testing"
	"time"

	"rossf/internal/netsim"
	"rossf/internal/ros"
	"rossf/msgs/std_msgs"
)

// TestCorruptionMidBatchDropsOnlyDamagedFrames exercises the batched
// egress path under bit-flip faults. The publisher sends in bursts so
// its write loop finds a backlog and ships multi-frame vectored batches
// (the egress instruments must prove batching actually engaged: more
// frames than writes). When corruption lands inside a batch, the
// subscriber's scanner must reject only the damaged frames and
// resynchronize within the same stream — valid frames before and after
// the damage keep flowing, and nothing corrupt ever reaches the
// callback. Run under -race with the rest of the matrix.
func TestCorruptionMidBatchDropsOnlyDamagedFrames(t *testing.T) {
	h := newHarness(t, &netsim.Fault{CorruptProb: 0.05, Seed: 9, Grace: handshakeGrace})
	const size = 512 // below the coalesce threshold: batches are contiguous runs
	rec := newReceiver(size)
	sub, err := ros.Subscribe(h.subNode, "/chaos/batch", func(m *std_msgs.String) {
		rec.accept(m.Data)
	}, ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := ros.Advertise[std_msgs.String](h.pubNode, "/chaos/batch",
		ros.WithQueueSize(64))
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Bursts of 8 back-to-back publishes: the fan-out enqueues faster
	// than the write loop drains, so batches form without any artificial
	// hook into the writer.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i += 8 {
			select {
			case <-stop:
				return
			default:
			}
			for j := 0; j < 8; j++ {
				if err := pub.Publish(&std_msgs.String{Data: payload(i+j, size)}); err != nil {
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	eventually(t, 30*time.Second, "100 distinct valid messages through batched corrupting link",
		func() bool { return rec.distinct() >= 100 })
	close(stop)
	<-done

	if bad := rec.corrupted(); len(bad) > 0 {
		t.Fatalf("corrupted payloads delivered from a batch: %d (first: %.60q)", len(bad), bad[0])
	}
	if injected := h.fault.Stats().Corruptions; injected == 0 {
		t.Fatal("fault plan injected no corruption; test proved nothing")
	}
	if sub.CorruptFrames() == 0 && sub.ResyncedBytes() == 0 {
		t.Error("corruption was injected but the subscriber detected none")
	}
	eg := h.reg.Snapshot().Egress
	if eg.Writes == 0 || eg.Frames <= eg.Writes {
		t.Fatalf("batching never engaged: %d frames over %d writes", eg.Frames, eg.Writes)
	}
	t.Logf("injected=%d rejected=%d resynced=%d delivered=%d writes=%d frames=%d coalesced=%d",
		h.fault.Stats().Corruptions, sub.CorruptFrames(), sub.ResyncedBytes(), rec.distinct(),
		eg.Writes, eg.Frames, eg.Coalesced)
}
