// Package chaostest exercises the middleware over deliberately broken
// links. It wires a publisher node and a subscriber node to the same
// in-process master, routes the subscriber's transport through a
// netsim.Link carrying a Fault plan, and asserts the hardening
// contracts that make the transport usable on a degraded network:
//
//   - no corrupted payload is ever delivered to a callback (the frame
//     CRC rejects it first),
//   - a severed or reset connection is re-established by the
//     subscriber's backoff loop, and recovers after Fault.Heal,
//   - a stalled peer cannot wedge a publisher (write deadlines cut it
//     loose; healthy subscribers keep receiving),
//   - service calls fail cleanly — never with garbage — and succeed on
//     retry,
//   - nothing leaks: every test checks the goroutine count returns to
//     its baseline after teardown, and the message life-cycle gauges
//     (obs.CheckLeaks over the core manager's live counts) confirm that
//     every arena allocated during the scenario was destructed — a
//     dropped frame, a severed connection, or an abandoned latch must
//     release its reference even when the fault plan fires mid-handoff.
//
// The fault schedules are seeded, so a failure reproduces with the
// same `go test -run` invocation. Run the whole matrix with the race
// detector:
//
//	go test -race ./internal/chaostest/...
package chaostest

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rossf/internal/netsim"
	"rossf/internal/obs"
	"rossf/internal/ros"
)

// handshakeGrace exempts the connection handshake from probabilistic
// faults: the connection header has no checksum, and a corrupted
// handshake is indistinguishable from a genuine type mismatch (a
// permanent rejection). The interesting regime — and the one the
// hardening must survive — is damage mid-stream.
const handshakeGrace = 8

// harness is one faulted pub/sub topology: a clean publisher node and
// a subscriber node whose dials route through the fault plan.
type harness struct {
	master  *ros.LocalMaster
	pubNode *ros.Node
	subNode *ros.Node
	fault   *netsim.Fault
	reg     *obs.Registry
}

// newHarness builds the topology and registers teardown plus a
// goroutine-leak check and a message-leak check on t.
func newHarness(t *testing.T, fault *netsim.Fault) *harness {
	t.Helper()
	// Leak checks are registered before the node teardown cleanup:
	// t.Cleanup runs LIFO, so they observe the state AFTER both nodes
	// have closed and drained.
	checkGoroutines(t)
	obs.CheckLeaks(t, 10*time.Second)
	link := netsim.Link{Fault: fault} // no pacing: fault behavior only
	master := ros.NewLocalMaster()
	reg := obs.NewRegistry()
	pubNode, err := ros.NewNode("chaos_pub", ros.WithMaster(master),
		ros.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	subNode, err := ros.NewNode("chaos_sub", ros.WithMaster(master),
		ros.WithDialer(link.Dialer()), ros.WithMetrics(reg))
	if err != nil {
		pubNode.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		subNode.Close()
		pubNode.Close()
	})
	return &harness{master: master, pubNode: pubNode, subNode: subNode,
		fault: fault, reg: reg}
}

// checkGoroutines records the goroutine count and fails the test if it
// has not returned near the baseline after cleanup. The tolerance
// absorbs runtime helpers (timers, GC); the budget absorbs injected
// stalls still draining.
func checkGoroutines(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		var n int
		for time.Now().Before(deadline) {
			n = runtime.NumGoroutine()
			if n <= base+3 {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d at start, %d after teardown", base, n)
	})
}

// eventually polls cond until it holds or the budget expires.
func eventually(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// payload builds the deterministic body for sequence number i: the
// number, a separator, and a repeating pattern derived from it. Any
// single corrupted bit breaks the equality check in checkPayload.
func payload(i, size int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%08d|", i)
	fill := byte('a' + i%26)
	for b.Len() < size {
		b.WriteByte(fill)
	}
	return b.String()
}

// parseSeq recovers the sequence number from a payload, reporting
// false on any malformed body.
func parseSeq(s string) (int, bool) {
	if len(s) < 9 || s[8] != '|' {
		return 0, false
	}
	var i int
	if _, err := fmt.Sscanf(s[:8], "%d", &i); err != nil {
		return 0, false
	}
	return i, true
}

// receiver accumulates delivered payloads and validates each against
// its expected body, recording any corruption that slipped through.
type receiver struct {
	size int

	mu    sync.Mutex
	seen  map[int]struct{}
	bad   []string
	count int
}

func newReceiver(size int) *receiver {
	return &receiver{size: size, seen: make(map[int]struct{})}
}

// accept validates one delivered payload.
func (r *receiver) accept(body string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
	i, ok := parseSeq(body)
	if !ok || body != payload(i, r.size) {
		if len(r.bad) < 8 { // keep failure output bounded
			r.bad = append(r.bad, body)
		}
		return
	}
	r.seen[i] = struct{}{}
}

// total returns how many payloads reached the callback, valid or not.
func (r *receiver) total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return uint64(r.count)
}

// distinct returns how many distinct valid sequence numbers arrived.
func (r *receiver) distinct() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.seen)
}

// corrupted returns the payloads that failed validation.
func (r *receiver) corrupted() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.bad...)
}

// maxSeen returns the highest valid sequence number received, or -1.
func (r *receiver) maxSeen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	max := -1
	for i := range r.seen {
		if i > max {
			max = i
		}
	}
	return max
}

// stateRecorder captures the subscriber's connection-state callbacks
// in order.
type stateRecorder struct {
	mu     sync.Mutex
	states []ros.ConnState
}

func (sr *stateRecorder) record(_ string, s ros.ConnState) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sr.states = append(sr.states, s)
}

// snapshot returns the transitions recorded so far.
func (sr *stateRecorder) snapshot() []ros.ConnState {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return append([]ros.ConnState(nil), sr.states...)
}

// has reports whether state s was ever recorded.
func (sr *stateRecorder) has(s ros.ConnState) bool {
	for _, got := range sr.snapshot() {
		if got == s {
			return true
		}
	}
	return false
}

// reconnectedAfterRetry reports whether a Connected transition follows
// a Retrying one — i.e. the backoff loop actually brought a failed
// link back.
func (sr *stateRecorder) reconnectedAfterRetry() bool {
	retried := false
	for _, s := range sr.snapshot() {
		switch s {
		case ros.ConnRetrying:
			retried = true
		case ros.ConnConnected:
			if retried {
				return true
			}
		}
	}
	return false
}

// fastRetry is the retry policy used throughout the tests: quick
// enough that recovery fits a test budget, jittered like production.
var fastRetry = ros.RetryPolicy{
	InitialBackoff: 10 * time.Millisecond,
	MaxBackoff:     100 * time.Millisecond,
	Multiplier:     2,
	Jitter:         0.5,
}
