package chaostest

import (
	"sync"
	"testing"
	"time"

	"rossf/internal/core"
	"rossf/internal/netsim"
	"rossf/internal/ros"
	"rossf/msgs/sensor_msgs"
)

// Field-wire chaos: sparse frames carry a range table that, if
// mis-decoded, would slice bytes into the wrong offsets of a live
// message — strictly worse than dropping the frame. These scenarios
// drive masked, unmasked and mask-rejected subscribers over faulted
// links and assert that every delivered message is internally
// consistent: requested fields match the published values exactly, and
// unrequested fields are typed-zero, never somebody else's bytes.

const fwChaosData = 4 << 10

// publishImagesUntil pumps deterministic ImageSF messages: Seq counts
// up, Stamp/data derive from Seq so any mis-sliced delivery is
// detectable at the callback.
func publishImagesUntil(t *testing.T, pub *ros.Publisher[sensor_msgs.ImageSF], stop chan struct{}) (wait func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint32(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			img, err := core.NewWithCapacity[sensor_msgs.ImageSF](fwChaosData + 8192)
			if err != nil {
				return
			}
			img.Header.Seq = i
			img.Header.Stamp.Sec = 1000 + i
			img.Header.Stamp.Nsec = i * 7
			img.Height = i ^ 0x5a5a
			img.Width = ^i
			if err := img.Data.Resize(fwChaosData); err != nil {
				core.Release(img)
				return
			}
			d := img.Data.Slice()
			for j := range d {
				d[j] = byte(i) + byte(j)
			}
			if err := pub.Publish(img); err != nil {
				core.Release(img)
				return
			}
			core.Release(img)
			// Publish briskly: a corrupted length field can make the
			// receive scanner wait out megabytes of garbage before the
			// CRC rejects the frame, and the stall lasts until the
			// publisher has filled that much wire. A faster feed keeps
			// those recovery windows short.
			time.Sleep(300 * time.Microsecond)
		}
	}()
	return func() { <-done }
}

// imageChecker validates deliveries against the deterministic pattern.
type imageChecker struct {
	masked bool // expects header-only content (seq, stamp), zero data

	mu   sync.Mutex
	seen map[uint32]struct{}
	bad  int
}

func newImageChecker(masked bool) *imageChecker {
	return &imageChecker{masked: masked, seen: make(map[uint32]struct{})}
}

func (c *imageChecker) accept(img *sensor_msgs.ImageSF) {
	seq := img.Header.Seq
	ok := img.Header.Stamp.Sec == 1000+seq && img.Header.Stamp.Nsec == seq*7
	if c.masked {
		// Unrequested fields must be typed-zero in every delivery.
		ok = ok && img.Height == 0 && img.Width == 0 &&
			!img.Encoding.IsSet() && img.Data.Len() == 0
	} else {
		ok = ok && img.Height == seq^0x5a5a && img.Width == ^seq &&
			img.Data.Len() == fwChaosData
		if ok {
			for j, b := range img.Data.Slice() {
				if b != byte(seq)+byte(j) {
					ok = false
					break
				}
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !ok {
		c.bad++
		return
	}
	c.seen[seq] = struct{}{}
}

func (c *imageChecker) distinct() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seen)
}

func (c *imageChecker) invalid() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bad
}

// TestFieldMaskMixedFleetOverFaultyLink runs all three subscriber kinds
// — masked, unmasked, mask-rejected — through a link that drops and
// corrupts transfers. Sparse frames damaged in flight must be rejected
// by the outer CRC, the table validator, or the per-range CRCs; no
// delivery on any subscriber may ever be mis-sliced.
func TestFieldMaskMixedFleetOverFaultyLink(t *testing.T) {
	h := newHarness(t, &netsim.Fault{DropProb: 0.04, CorruptProb: 0.05, Seed: 41, Grace: handshakeGrace})

	maskedC := newImageChecker(true)
	fullC := newImageChecker(false)
	rejectC := newImageChecker(false)

	subM, err := ros.Subscribe(h.subNode, "/chaos/fieldwire", maskedC.accept,
		ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry),
		ros.WithFields("header.seq", "header.stamp"))
	if err != nil {
		t.Fatal(err)
	}
	defer subM.Close()
	subF, err := ros.Subscribe(h.subNode, "/chaos/fieldwire", fullC.accept,
		ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry))
	if err != nil {
		t.Fatal(err)
	}
	defer subF.Close()
	// The bogus field forces a mask reject; the connection must still
	// deliver complete messages under fault.
	subR, err := ros.Subscribe(h.subNode, "/chaos/fieldwire", rejectC.accept,
		ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry),
		ros.WithFields("no_such_field"))
	if err != nil {
		t.Fatal(err)
	}
	defer subR.Close()

	pub, err := ros.Advertise[sensor_msgs.ImageSF](h.pubNode, "/chaos/fieldwire")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	stop := make(chan struct{})
	wait := publishImagesUntil(t, pub, stop)
	eventually(t, 60*time.Second, "30 valid messages on every subscriber kind", func() bool {
		return maskedC.distinct() >= 30 && fullC.distinct() >= 30 && rejectC.distinct() >= 30
	})
	close(stop)
	wait()

	for name, c := range map[string]*imageChecker{"masked": maskedC, "full": fullC, "rejected": rejectC} {
		if n := c.invalid(); n > 0 {
			t.Errorf("%s subscriber accepted %d mis-sliced/corrupted deliveries", name, n)
		}
	}
	if h.fault.Stats().Corruptions == 0 {
		t.Fatal("fault plan injected no corruption; test proved nothing")
	}
	fw := h.reg.Snapshot().Fieldwire
	if fw.SparseFrames == 0 {
		t.Error("masked link never shipped a sparse frame")
	}
	t.Logf("injected: %+v; fieldwire: sparse=%d full=%d saved=%d decode_errors=%d fallbacks=%d; delivered masked=%d full=%d rejected=%d",
		h.fault.Stats(), fw.SparseFrames, fw.FullFrames, fw.BytesSaved,
		fw.DecodeErrors, fw.MaskFallbacks,
		maskedC.distinct(), fullC.distinct(), rejectC.distinct())
}

// TestFieldMaskSurvivesResets tears masked connections down mid-stream:
// every redial renegotiates the mask, and deliveries after reconnect
// remain correctly sliced.
func TestFieldMaskSurvivesResets(t *testing.T) {
	h := newHarness(t, &netsim.Fault{ResetProb: 0.02, Seed: 42, Grace: handshakeGrace})

	maskedC := newImageChecker(true)
	states := &stateRecorder{}
	sub, err := ros.Subscribe(h.subNode, "/chaos/fieldwire_reset", maskedC.accept,
		ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry),
		ros.WithConnState(states.record),
		ros.WithFields("header.seq", "header.stamp"))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := ros.Advertise[sensor_msgs.ImageSF](h.pubNode, "/chaos/fieldwire_reset")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	stop := make(chan struct{})
	wait := publishImagesUntil(t, pub, stop)
	// Keep publishing until a full reset→retry→reconnect cycle has been
	// observed AND masked deliveries resumed after it — stopping at a
	// message count alone can beat the first reset to the finish line.
	eventually(t, 60*time.Second, "60 valid masked messages plus a reconnect cycle", func() bool {
		return maskedC.distinct() >= 60 && states.reconnectedAfterRetry()
	})
	close(stop)
	wait()

	if n := maskedC.invalid(); n > 0 {
		t.Errorf("masked subscriber accepted %d invalid deliveries across resets", n)
	}
	if h.fault.Stats().Resets == 0 {
		t.Error("fault plan injected no reset; test proved nothing")
	}
	t.Logf("resets=%d delivered=%d invalid=%d", h.fault.Stats().Resets, maskedC.distinct(), maskedC.invalid())
}
