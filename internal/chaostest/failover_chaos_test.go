package chaostest

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"rossf/internal/obs"
	"rossf/internal/ros"
	"rossf/msgs/std_msgs"
)

// Environment protocol between TestMasterFailoverSIGKILL and its
// subprocess primary.
const (
	failoverChildEnv = "ROSSF_CHAOS_FAILOVER_CHILD"
	failoverLeaseEnv = "ROSSF_CHAOS_FAILOVER_LEASE"
)

// failoverLease keeps the scenario fast while leaving the replication
// heartbeat (lease/3) plenty of margin on a loaded CI box.
const failoverLease = 500 * time.Millisecond

// primaryAddrFrom extracts the subprocess primary's listen address from
// its output (it prints "PRIMARY_ADDR=<addr>" once bound).
func primaryAddrFrom(out *syncBuffer) string {
	for _, line := range strings.Split(out.String(), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "PRIMARY_ADDR="); ok {
			return rest
		}
	}
	return ""
}

// TestMasterFailoverSIGKILL is the headline robustness scenario for the
// warm-standby master pair (DESIGN §3.14). A subprocess primary is
// SIGKILLed — no drain, no dying handshake, replication feed severed
// mid-lease — while clients are registering and a pub/sub flow is live.
// The contracts:
//
//   - the in-process standby promotes within a few lease windows and
//     bumps the cluster epoch,
//   - zero registrations lost: every registration acked before or after
//     the kill is present on the promoted standby (journal replay covers
//     acks the dead primary never replicated),
//   - zero message loss on the established data flow — the data plane
//     never notices the graph-plane failover,
//   - a stale-epoch primary restarted on the old address is fenced by
//     the new primary's probe and never wins the clients back.
func TestMasterFailoverSIGKILL(t *testing.T) {
	checkGoroutines(t)
	obs.CheckLeaks(t, 10*time.Second)

	out := &syncBuffer{}
	cmd := exec.Command(os.Args[0], "-test.run=^TestMasterFailoverKillChildHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		failoverChildEnv+"=1",
		failoverLeaseEnv+"="+failoverLease.String(),
	)
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting child primary: %v", err)
	}
	exited := make(chan struct{})
	go func() { cmd.Wait(); close(exited) }() //nolint:errcheck // SIGKILL exit is the expected outcome
	t.Cleanup(func() {
		select {
		case <-exited:
		default:
			cmd.Process.Kill()
			<-exited
		}
	})
	eventually(t, 10*time.Second, "child primary bound", func() bool {
		return primaryAddrFrom(out) != ""
	})
	primaryAddr := primaryAddrFrom(out)

	standby, err := ros.NewMasterServer("127.0.0.1:0",
		ros.WithServerMetrics(obs.NewRegistry()),
		ros.WithStandby(primaryAddr),
		ros.WithPrimaryLease(failoverLease),
		ros.WithClientExpiry(2*time.Second))
	if err != nil {
		t.Fatalf("starting standby: %v", err)
	}
	defer standby.Close()

	// Both clients know both masters, primary first.
	candidates := primaryAddr + "," + standby.Addr()
	reg := obs.NewRegistry()
	pubMaster, err := ros.DialMaster(candidates, resilientMasterOpts(reg, nil)...)
	if err != nil {
		t.Fatal(err)
	}
	defer pubMaster.Close()
	subMaster, err := ros.DialMaster(candidates, resilientMasterOpts(reg, nil)...)
	if err != nil {
		t.Fatal(err)
	}
	defer subMaster.Close()

	pubNode, err := ros.NewNode("chaos_fo_pub", ros.WithMaster(pubMaster), ros.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	subNode, err := ros.NewNode("chaos_fo_sub", ros.WithMaster(subMaster), ros.WithMetrics(reg))
	if err != nil {
		pubNode.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		subNode.Close()
		pubNode.Close()
	})

	const topic = "/chaos/failover"
	const size = 256
	rec := newReceiver(size)
	sub, err := ros.Subscribe(subNode, topic, func(m *std_msgs.String) {
		rec.accept(m.Data)
	}, ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := ros.Advertise[std_msgs.String](pubNode, topic)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	eventually(t, 10*time.Second, "discovery through the primary",
		func() bool { return pub.NumSubscribers() == 1 })

	stop := make(chan struct{})
	wait := pumpCounted(t, pub, size, stop)

	// Live registration traffic: keep registering distinct publishers
	// throughout the kill and the promotion. Every acked registration
	// must survive the failover; rejections during the outage window are
	// retried, never dropped.
	regStop := make(chan struct{})
	regDone := make(chan struct{})
	var regMu sync.Mutex
	acked := map[string]func(){}
	go func() {
		defer close(regDone)
		for i := 0; ; i++ {
			select {
			case <-regStop:
				return
			default:
			}
			name := fmt.Sprintf("%s/reg/%03d", topic, i)
			u, err := pubMaster.RegisterPublisher(name, ros.PublisherInfo{
				NodeName: "chaos_fo_pub", Addr: "x:1", TypeName: "chaos/R", MD5: "r"})
			if errors.Is(err, ros.ErrMasterUnavailable) {
				i-- // degraded or mid-rotation: retry the same slot
				time.Sleep(5 * time.Millisecond)
				continue
			}
			if err != nil {
				t.Errorf("registration %d during failover: %v", i, err)
				return
			}
			regMu.Lock()
			acked[name] = u
			regMu.Unlock()
			time.Sleep(5 * time.Millisecond)
		}
	}()
	ackedCount := func() int {
		regMu.Lock()
		defer regMu.Unlock()
		return len(acked)
	}
	eventually(t, 10*time.Second, "registration traffic flowing",
		func() bool { return ackedCount() >= 10 && rec.distinct() >= 50 })

	// SIGKILL the primary: no drain, no replicated goodbye.
	killed := time.Now()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("killing primary: %v", err)
	}
	<-exited

	eventually(t, 10*time.Second, "standby promotes",
		func() bool { return standby.IsPrimary() })
	if elapsed := time.Since(killed); elapsed > 10*failoverLease {
		t.Errorf("promotion took %v, want within a few lease windows (%v)", elapsed, failoverLease)
	}
	if got := standby.Epoch(); got != 2 {
		t.Errorf("promoted epoch = %d, want 2", got)
	}

	// Registration traffic must resume against the new primary.
	preKill := ackedCount()
	eventually(t, 10*time.Second, "registrations flowing after failover",
		func() bool { return ackedCount() >= preKill+10 })
	close(regStop)
	<-regDone

	// Zero registrations lost: everything ever acked is on the promoted
	// standby (replicated before the kill, or journal-replayed after).
	eventually(t, 10*time.Second, "all acked registrations on the new primary", func() bool {
		infos, err := pubMaster.TopicsInfo()
		if err != nil {
			return false
		}
		have := map[string]bool{}
		for _, ti := range infos {
			if ti.NumPublishers > 0 {
				have[ti.Name] = true
			}
		}
		regMu.Lock()
		defer regMu.Unlock()
		for name := range acked {
			if !have[name] {
				return false
			}
		}
		return have[topic] // the data-plane publisher survived too
	})

	// The zombie: old primary restarted on its old address with the
	// stale epoch it would load from a cold start. The new primary's
	// fencing probe must latch it shut, and the clients must stay put.
	var zombie *ros.MasterServer
	eventually(t, 10*time.Second, "old address rebindable", func() bool {
		var err error
		zombie, err = ros.NewMasterServer(primaryAddr,
			ros.WithServerMetrics(obs.NewRegistry()),
			ros.WithEpoch(1), ros.WithPrimaryLease(failoverLease))
		return err == nil
	})
	defer zombie.Close()
	eventually(t, 10*time.Second, "zombie fenced by the new primary",
		func() bool { return zombie.Fenced() })
	if zombie.IsPrimary() {
		t.Error("stale-epoch zombie still accepts writes")
	}
	if standby.Fenced() || !standby.IsPrimary() {
		t.Error("promoted standby yielded to the zombie")
	}

	// Clients never went back: a graph call still lands on the new
	// primary and the epoch gauge never regressed.
	if _, err := pubMaster.TopicsInfo(); err != nil {
		t.Errorf("graph call after zombie restart: %v", err)
	}
	if got := reg.Snapshot().Graph.Epoch; got != 2 {
		t.Errorf("client epoch gauge = %d, want 2 (must not regress to the zombie's)", got)
	}

	// Zero message loss on the established flow, end to end.
	close(stop)
	published := wait()
	eventually(t, 10*time.Second, "all published messages delivered",
		func() bool { return rec.distinct() == published })
	if bad := rec.corrupted(); len(bad) > 0 {
		t.Fatalf("corrupted payloads delivered: %d (first: %.60q)", len(bad), bad[0])
	}
	snap := reg.Snapshot()
	if s := snap.Subscribers[topic]; s.Drops != 0 || s.Reconnects != 0 {
		t.Errorf("established flow disturbed by failover: drops=%d reconnects=%d, want 0/0",
			s.Drops, s.Reconnects)
	}
	if snap.Graph.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1", snap.Graph.Failovers)
	}
	t.Logf("published=%d delivered=%d registrations=%d failovers=%d epoch=%d promotion<=%v",
		published, rec.distinct(), ackedCount(), snap.Graph.Failovers, snap.Graph.Epoch,
		time.Since(killed))
}

// TestMasterFailoverKillChildHelper is the victim half of
// TestMasterFailoverSIGKILL: it runs the primary master in a child
// process, prints its bound address, and serves until the parent
// SIGKILLs it.
func TestMasterFailoverKillChildHelper(t *testing.T) {
	if os.Getenv(failoverChildEnv) != "1" {
		t.Skip("helper for TestMasterFailoverSIGKILL")
	}
	lease, err := time.ParseDuration(os.Getenv(failoverLeaseEnv))
	if err != nil {
		t.Fatalf("bad lease env: %v", err)
	}
	srv, err := ros.NewMasterServer("127.0.0.1:0",
		ros.WithServerMetrics(obs.NewRegistry()),
		ros.WithPrimaryLease(lease))
	if err != nil {
		t.Fatalf("child primary: %v", err)
	}
	defer srv.Close()
	fmt.Printf("PRIMARY_ADDR=%s\n", srv.Addr())
	// Serve until SIGKILLed; the timer only bounds an orphaned run.
	time.Sleep(5 * time.Minute)
}
