package chaostest

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"

	"rossf/internal/core"
	"rossf/internal/obs"
	"rossf/internal/ros"
	"rossf/internal/shm"
	"rossf/msgs/std_msgs"
)

// Environment protocol between TestShmSubscriberSIGKILL and its
// re-exec'd child helper.
const (
	shmKillChildEnv  = "ROSSF_CHAOS_SHM_CHILD"
	shmKillMasterEnv = "ROSSF_CHAOS_SHM_MASTER"
	shmKillTopic     = "/chaos/shm_kill"
)

// syncBuffer is an io.Writer safe for concurrent Write (child process
// output) and Contains (parent assertions).
type syncBuffer struct {
	mu sync.Mutex
	b  []byte
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b = append(s.b, p...)
	return len(p), nil
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return string(s.b)
}

func (s *syncBuffer) Contains(sub string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(sub) > 0 && len(s.b) >= len(sub) && contains(s.b, sub)
}

func contains(b []byte, sub string) bool {
	for i := 0; i+len(sub) <= len(b); i++ {
		if string(b[i:i+len(sub)]) == sub {
			return true
		}
	}
	return false
}

// TestShmSubscriberSIGKILL is the crash-fault scenario for the
// shared-memory transport: a child process subscribes over shm, gets
// SIGKILLed mid-stream (no teardown, no heartbeat, slot references
// still held), and the publisher must
//
//   - reap the dead subscriber's lease and reclaim its slot references
//     (no segment leaks, store returns to idle),
//   - never wedge: a surviving same-machine shm subscriber keeps
//     receiving byte-perfect messages throughout,
//   - leak nothing: goroutines and message life-cycle gauges return to
//     their baselines after teardown.
func TestShmSubscriberSIGKILL(t *testing.T) {
	if !shm.Available() {
		t.Skip("shared-memory transport unavailable on this platform")
	}
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	const size = 1024

	reg := obs.NewRegistry()
	store, err := shm.NewStore(shm.Options{
		Dir:          t.TempDir(),
		LeaseTimeout: 250 * time.Millisecond,
		Stats:        reg.Shm(),
	})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	// Registered before every other cleanup, so it runs last — after the
	// nodes have closed and released every outstanding slot reference.
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		for !store.Idle() && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if !store.Idle() {
			t.Errorf("store never returned to idle: a SIGKILLed subscriber leaked slot references")
		}
		store.Close()
	})
	mgr := core.NewManager()
	mgr.SetBackingStore(store)

	// Baselines AFTER store creation: the store's lease reaper is a
	// long-lived goroutine that belongs to the baseline.
	checkGoroutines(t)
	obs.CheckLeaks(t, 10*time.Second)

	srv, err := ros.NewMasterServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewMasterServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	dial := func(name string) *ros.RemoteMaster {
		rm, err := ros.DialMaster(srv.Addr())
		if err != nil {
			t.Fatalf("DialMaster(%s): %v", name, err)
		}
		t.Cleanup(func() { rm.Close() })
		return rm
	}

	pubNode, err := ros.NewNode("chaos_shm_pub", ros.WithMaster(dial("pub")),
		ros.WithShmStore(store), ros.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pubNode.Close() })
	survivorNode, err := ros.NewNode("chaos_shm_survivor", ros.WithMaster(dial("survivor")),
		ros.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { survivorNode.Close() })

	rec := newReceiver(size)
	if _, err := ros.Subscribe(survivorNode, shmKillTopic, func(m *std_msgs.StringSF) {
		rec.accept(m.Data.Get())
	}, ros.WithTransport(ros.TransportShm)); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	pub, err := ros.Advertise[std_msgs.StringSF](pubNode, shmKillTopic)
	if err != nil {
		t.Fatalf("Advertise: %v", err)
	}

	out := &syncBuffer{}
	cmd := exec.Command(os.Args[0], "-test.run=^TestShmKillChildHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		shmKillChildEnv+"=1",
		shmKillMasterEnv+"="+srv.Addr(),
	)
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting child: %v", err)
	}
	exited := make(chan struct{})
	go func() { cmd.Wait(); close(exited) }() //nolint:errcheck // SIGKILL exit is the expected outcome
	t.Cleanup(func() {
		select {
		case <-exited:
		default:
			cmd.Process.Kill()
			<-exited
		}
	})

	eventually(t, 10*time.Second, "child and survivor subscriptions", func() bool {
		return pub.NumSubscribers() == 2
	})

	// Background pump of deterministic store-backed payloads.
	stop := make(chan struct{})
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m, err := core.NewIn[std_msgs.StringSF](mgr, 4096)
			if err != nil {
				return
			}
			m.Data.MustSet(payload(i, size))
			pubErr := pub.Publish(m)
			core.Release(m) //nolint:errcheck // pump exits below on publish failure
			if pubErr != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	defer func() {
		close(stop)
		<-pumpDone
	}()

	eventually(t, 10*time.Second, "child receiving over shared memory", func() bool {
		return out.Contains("CHILD_RECEIVING")
	})
	eventually(t, 10*time.Second, "survivor receiving", func() bool {
		return rec.distinct() >= 10
	})

	// SIGKILL: no teardown, no RetirePeer, heartbeat stops mid-lease.
	preKill := rec.distinct()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("killing child: %v", err)
	}
	<-exited

	eventually(t, 10*time.Second, "crashed subscriber's lease reaped", func() bool {
		return reg.Snapshot().Shm.LeasesReaped >= 1
	})
	eventually(t, 10*time.Second, "survivor progress after the kill", func() bool {
		return rec.distinct() >= preKill+20
	})
	eventually(t, 10*time.Second, "dead connection retired", func() bool {
		return pub.NumSubscribers() == 1
	})
	if bad := rec.corrupted(); len(bad) > 0 {
		t.Fatalf("survivor received %d corrupted payloads (first: %.60q)", len(bad), bad[0])
	}
}

// TestShmKillChildHelper is the victim half of TestShmSubscriberSIGKILL,
// run in a child process. It subscribes over shm, announces once
// delivery demonstrably uses mapped segments, then keeps consuming
// until the parent kills it with SIGKILL.
func TestShmKillChildHelper(t *testing.T) {
	if os.Getenv(shmKillChildEnv) != "1" {
		t.Skip("helper for TestShmSubscriberSIGKILL")
	}
	rm, err := ros.DialMaster(os.Getenv(shmKillMasterEnv))
	if err != nil {
		t.Fatalf("DialMaster: %v", err)
	}
	defer rm.Close()
	reg := obs.NewRegistry()
	node, err := ros.NewNode("chaos_shm_child", ros.WithMaster(rm), ros.WithMetrics(reg))
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()

	var announce sync.Once
	_, err = ros.Subscribe(node, shmKillTopic, func(m *std_msgs.StringSF) {
		_ = m.Data.Get()
		if reg.Snapshot().Shm.SegmentsMapped > 0 {
			announce.Do(func() { fmt.Println("CHILD_RECEIVING") })
		}
	}, ros.WithTransport(ros.TransportShm))
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	// Consume until SIGKILLed; the timer only bounds an orphaned run.
	time.Sleep(60 * time.Second)
}
