package chaostest

import (
	"testing"
	"time"

	"rossf/internal/netsim"
	"rossf/internal/ros"
	"rossf/msgs/std_msgs"
)

// TestCorruptionMidIngressBatchResyncs exercises the batched ingress
// reader under bit-flip faults. The publisher sends in bursts so many
// complete frames pile up in the subscriber's kernel buffer and one
// Read wakeup drains several of them from the shared ingress buffer —
// when corruption lands inside such a batch, the per-frame CRC must
// reject only the damaged frames, the magic-scan resync must recover
// inside the same batch (and across batch boundaries when the tail is
// carried over), and nothing mis-framed ever reaches the callback. The
// obs counters must account for the damage: the per-topic subscriber
// snapshot carries the same corrupt-frame count the Subscriber reports.
// Run under -race with the rest of the matrix.
func TestCorruptionMidIngressBatchResyncs(t *testing.T) {
	h := newHarness(t, &netsim.Fault{CorruptProb: 0.15, Seed: 21, Grace: handshakeGrace})
	const topic = "/chaos/ingress"
	const size = 256 // small frames: dozens fit in one ingress fill
	rec := newReceiver(size)
	sub, err := ros.Subscribe(h.subNode, topic, func(m *std_msgs.String) {
		rec.accept(m.Data)
	}, ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := ros.Advertise[std_msgs.String](h.pubNode, topic,
		ros.WithQueueSize(256))
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Bursts of 32 back-to-back publishes outpace the subscriber's
	// dispatch, so the kernel socket buffer accumulates multi-frame
	// backlogs and the batched reader gets real many-frames-per-fill
	// batches to slice (and partial tails to carry across fills).
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i += 32 {
			select {
			case <-stop:
				return
			default:
			}
			for j := 0; j < 32; j++ {
				if err := pub.Publish(&std_msgs.String{Data: payload(i+j, size)}); err != nil {
					return
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	// Egress batching coalesces the small frames into few large writes,
	// so a fixed message count may see no fault fire; keep the load
	// running until corruption landed in frame payloads (CRC rejects)
	// AND in framing bytes (the magic-scan resync had to skip stream
	// bytes to recover), with 200 distinct valid messages through.
	eventually(t, 60*time.Second, "payload and framing corruption plus 200 distinct valid messages through batched ingress",
		func() bool {
			return sub.CorruptFrames() > 0 && sub.ResyncedBytes() > 0 &&
				rec.distinct() >= 200
		})
	close(stop)
	<-done

	if bad := rec.corrupted(); len(bad) > 0 {
		t.Fatalf("mis-framed payloads delivered from an ingress batch: %d (first: %.60q)", len(bad), bad[0])
	}
	if injected := h.fault.Stats().Corruptions; injected == 0 {
		t.Fatal("fault plan injected no corruption; test proved nothing")
	}
	if sub.CorruptFrames() == 0 && sub.ResyncedBytes() == 0 {
		t.Error("corruption was injected but the batched reader detected none")
	}
	// Accounting: the obs registry's per-topic subscriber instruments
	// must carry the same damage the Subscriber reports — dropped
	// frames are counted, not silently swallowed by the batch slicer.
	// In-flight frames may still be dispatching after the publisher
	// stops, so the counts are given a moment to settle.
	eventually(t, 10*time.Second, "obs snapshot matches subscriber accounting",
		func() bool {
			ss, ok := h.reg.Snapshot().Subscribers[topic]
			return ok && ss.Corrupt == sub.CorruptFrames() && ss.Messages == rec.total()
		})
	t.Logf("injected=%d rejected=%d resynced=%d delivered=%d distinct=%d",
		h.fault.Stats().Corruptions, sub.CorruptFrames(), sub.ResyncedBytes(),
		rec.total(), rec.distinct())
}
