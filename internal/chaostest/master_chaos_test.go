package chaostest

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"rossf/internal/netsim"
	"rossf/internal/obs"
	"rossf/internal/ros"
	"rossf/msgs/std_msgs"
)

// resilientMasterOpts configures a RemoteMaster for chaos runs: fast
// reconnect, fast heartbeat, and a resync grace long enough that every
// peer client replays its registrations before removals are believed.
func resilientMasterOpts(reg *obs.Registry, dial ros.DialFunc) []ros.MasterOption {
	opts := []ros.MasterOption{
		ros.WithMasterRetry(fastRetry),
		ros.WithMasterHeartbeat(50 * time.Millisecond),
		ros.WithMasterResyncGrace(500 * time.Millisecond),
		ros.WithMasterMetrics(reg),
	}
	if dial != nil {
		opts = append(opts, ros.WithMasterDialer(dial))
	}
	return opts
}

// startMasterServer boots a master on addr ("127.0.0.1:0" or a fixed
// port when resurrecting), retrying briefly while a predecessor's port
// unwinds.
func startMasterServer(t *testing.T, addr string) *ros.MasterServer {
	t.Helper()
	var srv *ros.MasterServer
	var err error
	for i := 0; i < 100; i++ {
		srv, err = ros.NewMasterServer(addr, ros.WithServerMetrics(obs.NewRegistry()))
		if err == nil {
			return srv
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("start master on %s: %v", addr, err)
	return nil
}

// pumpCounted publishes deterministic payloads until stop closes and
// reports how many were handed to Publish successfully — the zero-loss
// budget the subscriber must meet.
func pumpCounted(t *testing.T, pub *ros.Publisher[std_msgs.String], size int, stop chan struct{}) (wait func() int) {
	t.Helper()
	done := make(chan struct{})
	var published atomic.Int64
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := pub.Publish(&std_msgs.String{Data: payload(i, size)}); err != nil {
				t.Errorf("publish %d during master chaos: %v", i, err)
				return
			}
			published.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()
	return func() int { <-done; return int(published.Load()) }
}

// TestMasterRestartMidTraffic is the headline graph-plane chaos
// scenario: the master process is killed and restarted while a pub/sub
// flow is live. The contracts:
//
//   - the established TCP flow never stops — every message published
//     before, during, and after the outage is delivered (zero loss, no
//     data-plane reconnect),
//   - while the master is down both clients enter degraded mode and
//     graph calls fail fast with ErrMasterUnavailable (never hang),
//   - after the restart both clients replay their journals, the
//     restarted master's TopicsInfo converges to the pre-crash graph,
//     and a late-joining subscriber discovers the publisher through it.
func TestMasterRestartMidTraffic(t *testing.T) {
	checkGoroutines(t)
	obs.CheckLeaks(t, 10*time.Second)

	srv := startMasterServer(t, "127.0.0.1:0")
	addr := srv.Addr()
	alive := true
	defer func() {
		if alive {
			srv.Close()
		}
	}()

	reg := obs.NewRegistry()
	pubMaster, err := ros.DialMaster(addr, resilientMasterOpts(reg, nil)...)
	if err != nil {
		t.Fatal(err)
	}
	defer pubMaster.Close()
	subMaster, err := ros.DialMaster(addr, resilientMasterOpts(reg, nil)...)
	if err != nil {
		t.Fatal(err)
	}
	defer subMaster.Close()

	pubNode, err := ros.NewNode("chaos_master_pub", ros.WithMaster(pubMaster), ros.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	subNode, err := ros.NewNode("chaos_master_sub", ros.WithMaster(subMaster), ros.WithMetrics(reg))
	if err != nil {
		pubNode.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		subNode.Close()
		pubNode.Close()
	})

	const topic = "/chaos/master_restart"
	const size = 256
	rec := newReceiver(size)
	sub, err := ros.Subscribe(subNode, topic, func(m *std_msgs.String) {
		rec.accept(m.Data)
	}, ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := ros.Advertise[std_msgs.String](pubNode, topic)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	eventually(t, 10*time.Second, "discovery through TCP master",
		func() bool { return pub.NumSubscribers() == 1 })

	stop := make(chan struct{})
	wait := pumpCounted(t, pub, size, stop)
	eventually(t, 10*time.Second, "steady flow before the crash",
		func() bool { return rec.distinct() >= 50 })

	// Kill the master under live traffic.
	srv.Close()
	alive = false
	eventually(t, 10*time.Second, "both clients degraded",
		func() bool { return reg.Snapshot().Graph.Degraded == 2 })

	// Degraded-mode graph calls fail fast with the typed error.
	start := time.Now()
	_, topErr := pubMaster.TopicsInfo()
	if !errors.Is(topErr, ros.ErrMasterUnavailable) {
		t.Fatalf("graph call during outage: got %v, want ErrMasterUnavailable", topErr)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("degraded call took %v, must fail fast", elapsed)
	}

	// The established flow keeps moving while the master is gone.
	before := rec.distinct()
	eventually(t, 10*time.Second, "traffic continuing without a master",
		func() bool { return rec.distinct() >= before+100 })

	// Resurrect the master at the same address; both clients must
	// reconnect and replay their journals.
	srv = startMasterServer(t, addr)
	alive = true
	eventually(t, 10*time.Second, "degraded mode exited",
		func() bool { return reg.Snapshot().Graph.Degraded == 0 })
	eventually(t, 10*time.Second, "graph converged on the restarted master", func() bool {
		infos, err := pubMaster.TopicsInfo()
		if err != nil {
			return false
		}
		for _, ti := range infos {
			if ti.Name == topic && ti.NumPublishers == 1 {
				return true
			}
		}
		return false
	})

	// A late-joining subscriber must converge through the restarted
	// master alone.
	lateReg := obs.NewRegistry()
	lateMaster, err := ros.DialMaster(addr, resilientMasterOpts(lateReg, nil)...)
	if err != nil {
		t.Fatal(err)
	}
	defer lateMaster.Close()
	lateNode, err := ros.NewNode("chaos_master_late", ros.WithMaster(lateMaster), ros.WithMetrics(lateReg))
	if err != nil {
		t.Fatal(err)
	}
	defer lateNode.Close()
	lateRec := newReceiver(size)
	lateSub, err := ros.Subscribe(lateNode, topic, func(m *std_msgs.String) {
		lateRec.accept(m.Data)
	}, ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry))
	if err != nil {
		t.Fatal(err)
	}
	defer lateSub.Close()
	eventually(t, 10*time.Second, "late subscriber converging through restarted master",
		func() bool { return lateRec.distinct() >= 20 })

	close(stop)
	published := wait()
	eventually(t, 10*time.Second, "all published messages delivered",
		func() bool { return rec.distinct() == published })

	if bad := rec.corrupted(); len(bad) > 0 {
		t.Fatalf("corrupted payloads delivered: %d (first: %.60q)", len(bad), bad[0])
	}
	snap := reg.Snapshot()
	if s := snap.Subscribers[topic]; s.Drops != 0 || s.Reconnects != 0 {
		t.Errorf("established flow disturbed by master restart: drops=%d reconnects=%d, want 0/0",
			s.Drops, s.Reconnects)
	}
	if g := snap.Graph; g.MasterReconnects < 2 || g.Replays < 2 || g.Resync.Count < 2 {
		t.Errorf("graph instruments: reconnects=%d replays=%d resyncs=%d, all want >= 2",
			g.MasterReconnects, g.Replays, g.Resync.Count)
	}
	t.Logf("published=%d delivered=%d reconnects=%d replays=%d resync_p95=%v",
		published, rec.distinct(), snap.Graph.MasterReconnects, snap.Graph.Replays,
		snap.Graph.Resync.P95)
}

// TestMasterPartitionDegradedMode cuts only the node↔master links with
// a netsim partition (the data plane dials directly and stays healthy).
// Degraded mode must be entered while partitioned and exited cleanly on
// heal, without the subscriber ever tearing down its live publisher
// connection — the partition and replay must be invisible to the flow.
func TestMasterPartitionDegradedMode(t *testing.T) {
	checkGoroutines(t)
	obs.CheckLeaks(t, 10*time.Second)

	srv := startMasterServer(t, "127.0.0.1:0")
	defer srv.Close()

	fault := &netsim.Fault{}
	link := netsim.Link{Fault: fault} // no pacing; partition behavior only
	reg := obs.NewRegistry()
	pubMaster, err := ros.DialMaster(srv.Addr(), resilientMasterOpts(reg, link.Dialer())...)
	if err != nil {
		t.Fatal(err)
	}
	defer pubMaster.Close()
	subMaster, err := ros.DialMaster(srv.Addr(), resilientMasterOpts(reg, link.Dialer())...)
	if err != nil {
		t.Fatal(err)
	}
	defer subMaster.Close()

	pubNode, err := ros.NewNode("chaos_part_pub", ros.WithMaster(pubMaster), ros.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	subNode, err := ros.NewNode("chaos_part_sub", ros.WithMaster(subMaster), ros.WithMetrics(reg))
	if err != nil {
		pubNode.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		subNode.Close()
		pubNode.Close()
	})

	const topic = "/chaos/master_partition"
	const size = 256
	rec := newReceiver(size)
	sub, err := ros.Subscribe(subNode, topic, func(m *std_msgs.String) {
		rec.accept(m.Data)
	}, ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := ros.Advertise[std_msgs.String](pubNode, topic)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	eventually(t, 10*time.Second, "discovery before partition",
		func() bool { return pub.NumSubscribers() == 1 })

	stop := make(chan struct{})
	wait := pumpCounted(t, pub, size, stop)
	eventually(t, 10*time.Second, "steady flow before partition",
		func() bool { return rec.distinct() >= 50 })

	fault.Partition()
	eventually(t, 10*time.Second, "degraded mode entered on partition",
		func() bool { return reg.Snapshot().Graph.Degraded == 2 })
	if _, err := subMaster.TopicsInfo(); !errors.Is(err, ros.ErrMasterUnavailable) {
		t.Fatalf("graph call during partition: got %v, want ErrMasterUnavailable", err)
	}
	before := rec.distinct()
	eventually(t, 10*time.Second, "data plane unaffected by the partition",
		func() bool { return rec.distinct() >= before+100 })

	fault.Heal()
	eventually(t, 10*time.Second, "degraded mode exited on heal",
		func() bool { return reg.Snapshot().Graph.Degraded == 0 })
	eventually(t, 10*time.Second, "graph intact after heal", func() bool {
		infos, err := subMaster.TopicsInfo()
		if err != nil {
			return false
		}
		for _, ti := range infos {
			if ti.Name == topic && ti.NumPublishers == 1 {
				return true
			}
		}
		return false
	})

	close(stop)
	published := wait()
	eventually(t, 10*time.Second, "all published messages delivered",
		func() bool { return rec.distinct() == published })

	if bad := rec.corrupted(); len(bad) > 0 {
		t.Fatalf("corrupted payloads delivered: %d (first: %.60q)", len(bad), bad[0])
	}
	snap := reg.Snapshot()
	if s := snap.Subscribers[topic]; s.Drops != 0 || s.Reconnects != 0 {
		t.Errorf("partition of the graph plane disturbed the data plane: drops=%d reconnects=%d, want 0/0",
			s.Drops, s.Reconnects)
	}
	if g := snap.Graph; g.MasterReconnects < 2 || g.Replays < 2 {
		t.Errorf("graph instruments: reconnects=%d replays=%d, want >= 2 each", g.MasterReconnects, g.Replays)
	}
}
