package chaostest

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"

	"rossf/internal/core"
	"rossf/internal/obs"
	"rossf/internal/ros"
	"rossf/internal/shm"
)

// Environment protocol between TestShmLargeSubscriberSIGKILL and its
// re-exec'd child helper.
const (
	shmLargeChildEnv  = "ROSSF_CHAOS_SHM_LARGE_CHILD"
	shmLargeMasterEnv = "ROSSF_CHAOS_SHM_LARGE_MASTER"
	shmLargeTopic     = "/chaos/shm_large_kill"

	// Above the 64 MiB slot-class ceiling, so every message rides the
	// large-object tier. The payloads are stamped sparsely (three bytes),
	// so the extents stay almost entirely unwritten.
	shmLargeSize = 72 << 20
)

// largeBlobSF is a point-cloud-sized SFM message for the large-object
// crash tests.
type largeBlobSF struct {
	Seq  uint32
	Data core.Vector[uint8]
}

func (*largeBlobSF) ROSMessageType() string { return "chaos_msgs/LargeBlob" }
func (*largeBlobSF) ROSMD5Sum() string      { return "feedfacecafebeef0123456789abcdef" }
func (*largeBlobSF) SFMMessage()            {}

// stampBlob marks the payload's first, middle, and last bytes with the
// sequence number; checkBlob verifies them without touching the rest of
// the (sparse) extent.
func stampBlob(d []byte, seq uint32) {
	b := byte(seq)
	d[0], d[len(d)/2], d[len(d)-1] = b, b, b
}

func checkBlob(d []byte, seq uint32) bool {
	b := byte(seq)
	return len(d) == shmLargeSize && d[0] == b && d[len(d)/2] == b && d[len(d)-1] == b
}

// blobReceiver tracks distinct verified sequence numbers.
type blobReceiver struct {
	mu      sync.Mutex
	seen    map[uint32]struct{}
	corrupt int
}

func (r *blobReceiver) accept(m *largeBlobSF) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !checkBlob(m.Data.Slice(), m.Seq) {
		r.corrupt++
		return
	}
	r.seen[m.Seq] = struct{}{}
}

func (r *blobReceiver) distinct() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.seen)
}

func (r *blobReceiver) corrupted() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.corrupt
}

// TestShmLargeSubscriberSIGKILL is the crash-fault scenario for the
// large-object tier: a child process subscribes over shm, >64 MiB
// messages stream as descriptors into dedicated large segments, and the
// child is SIGKILLed with a message in flight (references held, no
// teardown). The publisher must
//
//   - reap the dead subscriber's lease and reclaim its references on the
//     large segments (the store returns to idle; Close's deferred-unlink
//     path never wedges on the crashed peer),
//   - keep a surviving shm subscriber receiving verified large payloads
//     throughout,
//   - never fall back to inline TCP: every delivered message of this
//     workload rides the descriptor path.
func TestShmLargeSubscriberSIGKILL(t *testing.T) {
	if !shm.Available() {
		t.Skip("shared-memory transport unavailable on this platform")
	}
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	dir := t.TempDir()
	if free := shm.DirBytesFree(dir); free > 0 && free < 1<<30 {
		t.Skipf("only %d bytes free under %s, need 1 GiB headroom", free, dir)
	}

	reg := obs.NewRegistry()
	store, err := shm.NewStore(shm.Options{
		Dir:          dir,
		LeaseTimeout: 250 * time.Millisecond,
		Stats:        reg.Shm(),
	})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		for !store.Idle() && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if !store.Idle() {
			t.Errorf("store never returned to idle: the SIGKILLed subscriber leaked large-segment references")
		}
		store.Close()
		select {
		case <-store.TeardownDone():
		case <-time.After(10 * time.Second):
			t.Error("store teardown never completed")
		}
	})
	mgr := core.NewManager()
	mgr.SetBackingStore(store)

	checkGoroutines(t)
	obs.CheckLeaks(t, 10*time.Second)

	srv, err := ros.NewMasterServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewMasterServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	dial := func(name string) *ros.RemoteMaster {
		rm, err := ros.DialMaster(srv.Addr())
		if err != nil {
			t.Fatalf("DialMaster(%s): %v", name, err)
		}
		t.Cleanup(func() { rm.Close() })
		return rm
	}

	pubNode, err := ros.NewNode("chaos_shm_large_pub", ros.WithMaster(dial("pub")),
		ros.WithShmStore(store), ros.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pubNode.Close() })
	survivorNode, err := ros.NewNode("chaos_shm_large_survivor", ros.WithMaster(dial("survivor")),
		ros.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { survivorNode.Close() })

	rec := &blobReceiver{seen: make(map[uint32]struct{})}
	if _, err := ros.Subscribe(survivorNode, shmLargeTopic, rec.accept,
		ros.WithTransport(ros.TransportShm)); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	pub, err := ros.Advertise[largeBlobSF](pubNode, shmLargeTopic)
	if err != nil {
		t.Fatalf("Advertise: %v", err)
	}

	out := &syncBuffer{}
	cmd := exec.Command(os.Args[0], "-test.run=^TestShmLargeKillChildHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		shmLargeChildEnv+"=1",
		shmLargeMasterEnv+"="+srv.Addr(),
	)
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting child: %v", err)
	}
	exited := make(chan struct{})
	go func() { cmd.Wait(); close(exited) }() //nolint:errcheck // SIGKILL exit is the expected outcome
	t.Cleanup(func() {
		select {
		case <-exited:
		default:
			cmd.Process.Kill()
			<-exited
		}
	})

	eventually(t, 10*time.Second, "child and survivor subscriptions", func() bool {
		return pub.NumSubscribers() == 2
	})

	// Background pump of sparse large messages.
	stop := make(chan struct{})
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m, err := core.NewIn[largeBlobSF](mgr, shmLargeSize+8192)
			if err != nil {
				return
			}
			m.Seq = uint32(i)
			m.Data.MustResize(shmLargeSize)
			stampBlob(m.Data.Slice(), m.Seq)
			pubErr := pub.Publish(m)
			core.Release(m) //nolint:errcheck // pump exits below on publish failure
			if pubErr != nil {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()
	defer func() {
		close(stop)
		<-pumpDone
	}()

	eventually(t, 15*time.Second, "child receiving large messages over shared memory", func() bool {
		return out.Contains("CHILD_RECEIVING")
	})
	eventually(t, 15*time.Second, "survivor receiving large messages", func() bool {
		return rec.distinct() >= 5
	})

	// Steady state before the crash: every large message rode the
	// descriptor path, nothing dropped to inline TCP.
	if pre := reg.Snapshot().Shm; pre.Fallbacks != 0 {
		t.Errorf("Fallbacks = %d before the kill, want 0 (reasons: %+v)", pre.Fallbacks, pre.FallbackReasons)
	}

	// SIGKILL with a >64 MiB message in flight: no teardown, no
	// RetirePeer, the child's large-segment references just stop moving.
	preKill := rec.distinct()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("killing child: %v", err)
	}
	<-exited

	eventually(t, 10*time.Second, "crashed subscriber's lease reaped", func() bool {
		return reg.Snapshot().Shm.LeasesReaped >= 1
	})
	eventually(t, 15*time.Second, "survivor progress after the kill", func() bool {
		return rec.distinct() >= preKill+10
	})
	eventually(t, 10*time.Second, "dead connection retired", func() bool {
		return pub.NumSubscribers() == 1
	})
	if n := rec.corrupted(); n > 0 {
		t.Fatalf("survivor received %d corrupted large payloads", n)
	}
	// After the crash only aggregate lease-lost transients are tolerated
	// (Shares racing the reaper while the dead peer's connection drains);
	// every CLASSIFIED reason must still read zero — a large message
	// must never fall back for being large.
	fr := reg.Snapshot().Shm.FallbackReasons
	if fr.Oversized != 0 || fr.HeapArena != 0 || fr.PeerTableFull != 0 || fr.RemotePeer != 0 || fr.OldBuild != 0 {
		t.Errorf("classified fallbacks after the kill: %+v, want all zero", fr)
	}
}

// TestShmLargeKillChildHelper is the victim half of
// TestShmLargeSubscriberSIGKILL, run in a child process. It subscribes
// over shm, announces once large-message delivery demonstrably uses
// mapped segments, then keeps consuming until the parent kills it.
func TestShmLargeKillChildHelper(t *testing.T) {
	if os.Getenv(shmLargeChildEnv) != "1" {
		t.Skip("helper for TestShmLargeSubscriberSIGKILL")
	}
	rm, err := ros.DialMaster(os.Getenv(shmLargeMasterEnv))
	if err != nil {
		t.Fatalf("DialMaster: %v", err)
	}
	defer rm.Close()
	reg := obs.NewRegistry()
	node, err := ros.NewNode("chaos_shm_large_child", ros.WithMaster(rm), ros.WithMetrics(reg))
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()

	var announce sync.Once
	_, err = ros.Subscribe(node, shmLargeTopic, func(m *largeBlobSF) {
		if !checkBlob(m.Data.Slice(), m.Seq) {
			fmt.Println("CHILD_CORRUPT")
			return
		}
		if reg.Snapshot().Shm.SegmentsMapped > 0 {
			announce.Do(func() { fmt.Println("CHILD_RECEIVING") })
		}
	}, ros.WithTransport(ros.TransportShm))
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	// Consume until SIGKILLed; the timer only bounds an orphaned run.
	time.Sleep(60 * time.Second)
}
