package chaostest

import (
	"testing"
	"time"

	"rossf/internal/core"
	"rossf/internal/netsim"
	"rossf/internal/ros"
	"rossf/msgs/rospy_tutorials"
	"rossf/msgs/std_msgs"
)

// publishUntil runs a background publisher of deterministic payloads,
// one sequence number per message, until stop is closed. It returns
// after the pump goroutine has exited.
func publishUntil(t *testing.T, pub *ros.Publisher[std_msgs.String], size int, stop chan struct{}) (wait func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := pub.Publish(&std_msgs.String{Data: payload(i, size)}); err != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	return func() { <-done }
}

// TestLossyLinkDeliversOnlyValidFrames runs pub/sub over a link that
// silently discards ~15% of transfers. Frames vanish, the stream
// desynchronizes, and the subscriber must resynchronize by scanning —
// but every payload that reaches the callback must be byte-perfect.
func TestLossyLinkDeliversOnlyValidFrames(t *testing.T) {
	h := newHarness(t, &netsim.Fault{DropProb: 0.15, Seed: 1, Grace: handshakeGrace})
	const size = 1024
	rec := newReceiver(size)
	sub, err := ros.Subscribe(h.subNode, "/chaos/drop", func(m *std_msgs.String) {
		rec.accept(m.Data)
	}, ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := ros.Advertise[std_msgs.String](h.pubNode, "/chaos/drop")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	stop := make(chan struct{})
	wait := publishUntil(t, pub, size, stop)
	eventually(t, 20*time.Second, "50 distinct valid messages over lossy link",
		func() bool { return rec.distinct() >= 50 })
	close(stop)
	wait()

	if bad := rec.corrupted(); len(bad) > 0 {
		t.Fatalf("corrupted payloads delivered: %d (first: %.60q)", len(bad), bad[0])
	}
	t.Logf("drops=%d resyncedBytes=%d corruptFramesRejected=%d delivered=%d",
		h.fault.Stats().Drops, sub.ResyncedBytes(), sub.CorruptFrames(), rec.distinct())
}

// TestCorruptionNeverReachesCallback flips bits in ~10% of transfers.
// The CRC must reject every damaged frame; the callback sees only
// byte-perfect payloads.
func TestCorruptionNeverReachesCallback(t *testing.T) {
	h := newHarness(t, &netsim.Fault{CorruptProb: 0.1, Seed: 2, Grace: handshakeGrace})
	const size = 1024
	rec := newReceiver(size)
	sub, err := ros.Subscribe(h.subNode, "/chaos/corrupt", func(m *std_msgs.String) {
		rec.accept(m.Data)
	}, ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := ros.Advertise[std_msgs.String](h.pubNode, "/chaos/corrupt")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	stop := make(chan struct{})
	wait := publishUntil(t, pub, size, stop)
	eventually(t, 20*time.Second, "50 distinct valid messages over corrupting link",
		func() bool { return rec.distinct() >= 50 })
	close(stop)
	wait()

	if bad := rec.corrupted(); len(bad) > 0 {
		t.Fatalf("corrupted payloads delivered: %d (first: %.60q)", len(bad), bad[0])
	}
	if injected := h.fault.Stats().Corruptions; injected == 0 {
		t.Fatal("fault plan injected no corruption; test proved nothing")
	}
	if sub.CorruptFrames() == 0 && sub.ResyncedBytes() == 0 {
		t.Error("corruption was injected but the subscriber detected none")
	}
	t.Logf("injected=%d rejectedFrames=%d resyncedBytes=%d delivered=%d",
		h.fault.Stats().Corruptions, sub.CorruptFrames(), sub.ResyncedBytes(), rec.distinct())
}

// TestCorruptionNeverReachesCallbackSFM repeats the corruption run on
// the serialization-free path, where the stakes are higher: a frame is
// adopted in place as a live message, so the CRC check is the only
// thing standing between a flipped bit and a corrupted object graph.
func TestCorruptionNeverReachesCallbackSFM(t *testing.T) {
	h := newHarness(t, &netsim.Fault{CorruptProb: 0.1, Seed: 3, Grace: handshakeGrace})
	const size = 1024
	rec := newReceiver(size)
	sub, err := ros.Subscribe(h.subNode, "/chaos/corrupt_sfm", func(m *std_msgs.StringSF) {
		rec.accept(m.Data.Get())
	}, ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := ros.Advertise[std_msgs.StringSF](h.pubNode, "/chaos/corrupt_sfm")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m, err := std_msgs.NewStringSF()
			if err != nil {
				return
			}
			m.Data.MustSet(payload(i, size))
			if err := pub.Publish(m); err != nil {
				core.Release(m)
				return
			}
			core.Release(m)
			time.Sleep(time.Millisecond)
		}
	}()
	eventually(t, 20*time.Second, "50 distinct valid SFM messages over corrupting link",
		func() bool { return rec.distinct() >= 50 })
	close(stop)
	<-done

	if bad := rec.corrupted(); len(bad) > 0 {
		t.Fatalf("corrupted SFM payloads delivered: %d (first: %.60q)", len(bad), bad[0])
	}
	if sub.CorruptFrames() == 0 && sub.ResyncedBytes() == 0 {
		t.Error("corruption was injected but the subscriber detected none")
	}
}

// TestStalledSubscriberCannotWedgePublisher pins the write-deadline
// contract: one subscriber's link stalls on every operation, filling
// the kernel buffers until the publisher's writes block. The deadline
// must cut that connection loose so the healthy subscriber keeps
// receiving everything, and teardown must not strand the write loop.
func TestStalledSubscriberCannotWedgePublisher(t *testing.T) {
	h := newHarness(t, &netsim.Fault{
		StallProb: 1, Stall: 1200 * time.Millisecond, Seed: 4, Grace: handshakeGrace,
	})
	const size = 128 * 1024
	const total = 30

	stalledRec := newReceiver(size)
	stalledSub, err := ros.Subscribe(h.subNode, "/chaos/stall", func(m *std_msgs.String) {
		stalledRec.accept(m.Data)
	}, ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry))
	if err != nil {
		t.Fatal(err)
	}
	defer stalledSub.Close()

	// The healthy subscriber lives on the publisher's node: plain TCP,
	// no faults.
	cleanRec := newReceiver(size)
	cleanSub, err := ros.Subscribe(h.pubNode, "/chaos/stall", func(m *std_msgs.String) {
		cleanRec.accept(m.Data)
	}, ros.WithTransport(ros.TransportTCP))
	if err != nil {
		t.Fatal(err)
	}
	defer cleanSub.Close()

	pub, err := ros.Advertise[std_msgs.String](h.pubNode, "/chaos/stall",
		ros.WithWriteTimeout(200*time.Millisecond), ros.WithQueueSize(total))
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	eventually(t, 5*time.Second, "both subscribers attached",
		func() bool { return pub.NumSubscribers() >= 2 })

	for i := 0; i < total; i++ {
		if err := pub.Publish(&std_msgs.String{Data: payload(i, size)}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	eventually(t, 15*time.Second, "healthy subscriber received all frames despite stalled peer",
		func() bool { return cleanRec.distinct() == total })
	if bad := cleanRec.corrupted(); len(bad) > 0 {
		t.Fatalf("healthy subscriber got corrupted payloads: %d", len(bad))
	}
	t.Logf("clean=%d/%d stalled=%d stallsInjected=%d",
		cleanRec.distinct(), total, stalledRec.distinct(), h.fault.Stats().Stalls)
}

// TestResetRecoversViaBackoff injects mid-stream connection resets and
// requires the subscriber's backoff loop to keep re-establishing the
// link: delivery continues across resets, and the state callback shows
// Connected following Retrying.
func TestResetRecoversViaBackoff(t *testing.T) {
	h := newHarness(t, &netsim.Fault{ResetProb: 0.02, Seed: 5, Grace: handshakeGrace})
	const size = 1024
	rec := newReceiver(size)
	states := &stateRecorder{}
	sub, err := ros.Subscribe(h.subNode, "/chaos/reset", func(m *std_msgs.String) {
		rec.accept(m.Data)
	}, ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry),
		ros.WithConnState(states.record))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := ros.Advertise[std_msgs.String](h.pubNode, "/chaos/reset")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	stop := make(chan struct{})
	wait := publishUntil(t, pub, size, stop)
	eventually(t, 30*time.Second, "delivery continuing across injected resets",
		func() bool {
			return rec.distinct() >= 50 && states.reconnectedAfterRetry()
		})
	close(stop)
	wait()

	if bad := rec.corrupted(); len(bad) > 0 {
		t.Fatalf("corrupted payloads delivered: %d", len(bad))
	}
	if h.fault.Stats().Resets == 0 {
		t.Fatal("fault plan injected no resets; test proved nothing")
	}
	t.Logf("resets=%d delivered=%d transitions=%d",
		h.fault.Stats().Resets, rec.distinct(), len(states.snapshot()))
}

// TestPartitionHealReconnects flips the partition switch mid-stream:
// every connection is severed and dials fail until Heal. The
// subscriber must report Retrying while partitioned and return to
// Connected — with fresh messages flowing — after the partition heals.
func TestPartitionHealReconnects(t *testing.T) {
	h := newHarness(t, &netsim.Fault{Seed: 6, Grace: handshakeGrace})
	const size = 1024
	rec := newReceiver(size)
	states := &stateRecorder{}
	sub, err := ros.Subscribe(h.subNode, "/chaos/partition", func(m *std_msgs.String) {
		rec.accept(m.Data)
	}, ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry),
		ros.WithConnState(states.record))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := ros.Advertise[std_msgs.String](h.pubNode, "/chaos/partition")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	stop := make(chan struct{})
	defer close(stop)
	publishUntil(t, pub, size, stop)

	eventually(t, 5*time.Second, "healthy delivery before the partition",
		func() bool { return rec.distinct() >= 5 })

	h.fault.Partition()
	eventually(t, 5*time.Second, "subscriber reports Retrying while partitioned",
		func() bool { return states.has(ros.ConnRetrying) })

	before := rec.maxSeen()
	h.fault.Heal()
	// The retry budget here: fastRetry tops out at 100ms between
	// attempts, so recovery must be nearly immediate after Heal.
	eventually(t, 5*time.Second, "subscriber reconnected and received fresh messages after Heal",
		func() bool {
			return states.reconnectedAfterRetry() && rec.maxSeen() > before
		})
	if bad := rec.corrupted(); len(bad) > 0 {
		t.Fatalf("corrupted payloads delivered: %d", len(bad))
	}
	// The observability layer must have seen the same story: retries
	// counted on the subscriber instrument, traffic on both sides.
	snap := h.reg.Snapshot()
	ss := snap.Subscribers["/chaos/partition"]
	if ss.Reconnects == 0 {
		t.Errorf("subscriber instrument recorded no reconnects across a partition")
	}
	if ss.Messages == 0 || snap.Publishers["/chaos/partition"].Messages == 0 {
		t.Errorf("instruments recorded no traffic: sub=%+v pub=%+v",
			ss, snap.Publishers["/chaos/partition"])
	}
	// Message leak-freedom after Heal is asserted for every scenario by
	// the harness's obs.CheckLeaks cleanup once both nodes tear down.
}

// TestRetryBudgetExhaustedGivesUp pins the bounded-retry contract:
// with MaxAttempts set and the link permanently down, the subscriber
// reports exactly MaxAttempts Retrying transitions and then GaveUp —
// never Connected, and no further dial churn.
func TestRetryBudgetExhaustedGivesUp(t *testing.T) {
	h := newHarness(t, &netsim.Fault{Seed: 7})
	h.fault.Partition() // never healed

	pub, err := ros.Advertise[std_msgs.String](h.pubNode, "/chaos/giveup")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	states := &stateRecorder{}
	policy := fastRetry
	policy.MaxAttempts = 3
	sub, err := ros.Subscribe(h.subNode, "/chaos/giveup", func(m *std_msgs.String) {},
		ros.WithTransport(ros.TransportTCP), ros.WithRetry(policy),
		ros.WithConnState(states.record))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	eventually(t, 10*time.Second, "subscriber gave up after exhausting retries",
		func() bool { return states.has(ros.ConnGaveUp) })
	if states.has(ros.ConnConnected) {
		t.Error("subscriber reported Connected through a permanent partition")
	}
	retries := 0
	for _, s := range states.snapshot() {
		if s == ros.ConnRetrying {
			retries++
		}
	}
	if retries != policy.MaxAttempts {
		t.Errorf("retry transitions = %d, want exactly %d", retries, policy.MaxAttempts)
	}
}

// TestServiceCallsUnderFaults drives request/response traffic through
// a link that drops and corrupts in both directions. Calls may fail —
// with a timeout, a CRC rejection, or a server-reported corrupt
// request — but a completed call must never return a wrong answer,
// and a fresh client must always get through eventually.
func TestServiceCallsUnderFaults(t *testing.T) {
	h := newHarness(t, &netsim.Fault{
		DropProb: 0.05, CorruptProb: 0.05, Seed: 8, Grace: handshakeGrace,
	})
	srv, err := ros.AdvertiseService(h.pubNode, "/chaos/add",
		func(req *rospy_tutorials.AddTwoIntsRequest) (*rospy_tutorials.AddTwoIntsResponse, error) {
			return &rospy_tutorials.AddTwoIntsResponse{Sum: req.A + req.B}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const want = 20
	successes, failures := 0, 0
	var client *ros.ServiceClient[rospy_tutorials.AddTwoIntsRequest, rospy_tutorials.AddTwoIntsResponse]
	defer func() {
		if client != nil {
			client.Close()
		}
	}()
	deadline := time.Now().Add(60 * time.Second)
	for i := 0; successes < want; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d calls succeeded (%d failures) within budget",
				successes, want, failures)
		}
		if client == nil {
			client, err = ros.NewServiceClient[rospy_tutorials.AddTwoIntsRequest,
				rospy_tutorials.AddTwoIntsResponse](h.subNode, "/chaos/add")
			if err != nil {
				failures++
				client = nil
				time.Sleep(10 * time.Millisecond)
				continue
			}
			client.SetCallTimeout(500 * time.Millisecond)
		}
		a, b := int64(i), int64(2*i+1)
		resp, err := client.Call(&rospy_tutorials.AddTwoIntsRequest{A: a, B: b})
		if err != nil {
			// Any failure is acceptable; garbage is not. Reconnect: after
			// a timeout mid-exchange the stream position is undefined.
			failures++
			client.Close()
			client = nil
			continue
		}
		if resp.Sum != a+b {
			t.Fatalf("call %d returned wrong sum %d, want %d — corruption reached the caller",
				i, resp.Sum, a+b)
		}
		successes++
	}
	if h.fault.Stats().Drops == 0 && h.fault.Stats().Corruptions == 0 {
		t.Fatal("fault plan injected nothing; test proved nothing")
	}
	t.Logf("successes=%d failures=%d drops=%d corruptions=%d",
		successes, failures, h.fault.Stats().Drops, h.fault.Stats().Corruptions)
}
