package chaostest

import (
	"os"
	"os/exec"
	"testing"
	"time"

	"rossf/internal/netsim"
	"rossf/internal/obs"
	"rossf/internal/ros"
	"rossf/msgs/std_msgs"
)

// Environment protocol between TestRelaySIGKILLMidStream and its
// re-exec'd child helper.
const (
	relayKillChildEnv  = "ROSSF_CHAOS_RELAY_CHILD"
	relayKillMasterEnv = "ROSSF_CHAOS_RELAY_MASTER"
	relayKillTopic     = "/chaos/relay_kill"
)

// TestRelaySIGKILLMidStream is the crash-fault scenario for the relay
// tier: a child process relays the topic, a delegated subscriber
// attaches to it, and the relay is SIGKILLed mid-stream (no
// unregister, no teardown). The contracts:
//
//   - the master's liveness watchdog expires the dead relay's
//     registrations, so the graph reconciles without its cooperation,
//   - the orphaned subscriber retries over its backoff loop, sees the
//     relay leave the publisher set, reattaches to the origin, and the
//     stream resumes — never with a corrupt payload,
//   - a WithoutRelay subscriber on a direct origin connection loses
//     nothing at all throughout the crash,
//   - goroutine and message gauges return to baseline.
func TestRelaySIGKILLMidStream(t *testing.T) {
	if os.Getenv(relayKillChildEnv) != "" {
		t.Skip("child-only helper env set; not a parent run")
	}
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	const size = 512

	checkGoroutines(t)
	obs.CheckLeaks(t, 10*time.Second)
	reg := obs.NewRegistry()

	// Short liveness so the kill is detected promptly; every live
	// client heartbeats well inside the window.
	srv, err := ros.NewMasterServer("127.0.0.1:0", ros.WithClientExpiry(time.Second))
	if err != nil {
		t.Fatalf("NewMasterServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	dial := func(name string) *ros.RemoteMaster {
		rm, err := ros.DialMaster(srv.Addr(),
			ros.WithMasterRetry(fastRetry),
			ros.WithMasterHeartbeat(100*time.Millisecond),
			ros.WithMasterMetrics(reg))
		if err != nil {
			t.Fatalf("DialMaster(%s): %v", name, err)
		}
		t.Cleanup(func() { rm.Close() })
		return rm
	}

	pubNode, err := ros.NewNode("chaos_origin", ros.WithMaster(dial("origin")),
		ros.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pubNode.Close() })
	subNode, err := ros.NewNode("chaos_fan_sub", ros.WithMaster(dial("subs")),
		ros.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { subNode.Close() })

	pub, err := ros.Advertise[std_msgs.String](pubNode, relayKillTopic)
	if err != nil {
		t.Fatalf("Advertise: %v", err)
	}

	// Boot the relay child and wait for it to serve the topic.
	out := &syncBuffer{}
	cmd := exec.Command(os.Args[0], "-test.run=^TestRelayKillChildHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		relayKillChildEnv+"=1",
		relayKillMasterEnv+"="+srv.Addr(),
	)
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting child: %v", err)
	}
	exited := make(chan struct{})
	go func() { cmd.Wait(); close(exited) }() //nolint:errcheck // SIGKILL exit is the expected outcome
	t.Cleanup(func() {
		select {
		case <-exited:
		default:
			cmd.Process.Kill()
			<-exited
		}
	})
	eventually(t, 15*time.Second, "relay attached upstream", func() bool {
		return out.Contains("RELAY_ACTIVE") && pub.NumSubscribers() >= 1
	})

	// Delegated subscriber (attaches to the relay) and a direct one
	// (WithoutRelay, the zero-loss control).
	delegated := newReceiver(size)
	states := &stateRecorder{}
	if _, err := ros.Subscribe(subNode, relayKillTopic, func(m *std_msgs.String) {
		delegated.accept(m.Data)
	}, ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry),
		ros.WithConnState(states.record)); err != nil {
		t.Fatalf("Subscribe(delegated): %v", err)
	}
	direct := newReceiver(size)
	if _, err := ros.Subscribe(subNode, relayKillTopic, func(m *std_msgs.String) {
		direct.accept(m.Data)
	}, ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry),
		ros.WithoutRelay()); err != nil {
		t.Fatalf("Subscribe(direct): %v", err)
	}

	// Origin serves the relay and the direct subscriber; the delegated
	// subscriber must NOT appear at the origin while the relay lives.
	eventually(t, 15*time.Second, "delegated topology", func() bool {
		return pub.NumSubscribers() == 2 && out.Contains("RELAY_SERVING")
	})

	stop := make(chan struct{})
	wait := pumpCounted(t, pub, size, stop)
	eventually(t, 15*time.Second, "both subscribers receiving", func() bool {
		return delegated.distinct() >= 10 && direct.distinct() >= 10
	})

	// SIGKILL: the relay vanishes without unregistering.
	preKill := delegated.distinct()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("killing relay child: %v", err)
	}
	<-exited

	// The orphan must fail over to the origin and make fresh progress.
	eventually(t, 20*time.Second, "delegated subscriber failover", func() bool {
		return delegated.distinct() >= preKill+20
	})
	if !states.reconnectedAfterRetry() {
		t.Errorf("delegated subscriber never went Retrying -> Connected; states: %v", states.snapshot())
	}
	// Graph reconciliation: the dead relay's registrations expire, and
	// the origin ends up serving both survivors directly.
	eventually(t, 20*time.Second, "origin serving both survivors", func() bool {
		return pub.NumSubscribers() == 2
	})

	close(stop)
	published := wait()
	eventually(t, 15*time.Second, "direct subscriber catching up", func() bool {
		return direct.distinct() == published
	})
	if bad := delegated.corrupted(); len(bad) > 0 {
		t.Fatalf("delegated subscriber got %d corrupt payloads (first: %.60q)", len(bad), bad[0])
	}
	if bad := direct.corrupted(); len(bad) > 0 {
		t.Fatalf("direct subscriber got %d corrupt payloads (first: %.60q)", len(bad), bad[0])
	}
	if direct.distinct() != published {
		t.Errorf("direct subscriber lost traffic during the relay crash: %d/%d", direct.distinct(), published)
	}
}

// TestRelayKillChildHelper is the victim half of
// TestRelaySIGKILLMidStream: it relays the topic until the parent
// SIGKILLs it.
func TestRelayKillChildHelper(t *testing.T) {
	if os.Getenv(relayKillChildEnv) == "" {
		t.Skip("helper for TestRelaySIGKILLMidStream")
	}
	master, err := ros.DialMaster(os.Getenv(relayKillMasterEnv),
		ros.WithMasterHeartbeat(100*time.Millisecond))
	if err != nil {
		t.Fatalf("child: DialMaster: %v", err)
	}
	node, err := ros.NewNode("chaos_relay", ros.WithMaster(master))
	if err != nil {
		t.Fatalf("child: NewNode: %v", err)
	}
	var s std_msgs.String
	relay, err := ros.NewRelay(node, relayKillTopic,
		s.ROSMessageType(), s.ROSMD5Sum(), false)
	if err != nil {
		t.Fatalf("child: NewRelay: %v", err)
	}
	for relay.NumPublishers() < 1 {
		time.Sleep(5 * time.Millisecond)
	}
	t.Log("RELAY_ACTIVE")
	for relay.NumSubscribers() < 1 {
		time.Sleep(5 * time.Millisecond)
	}
	t.Log("RELAY_SERVING")
	time.Sleep(5 * time.Minute) // parent SIGKILLs long before this
}

// TestStalledShardMemberIsolated is the stall-fault scenario for the
// sharded egress: one subscriber in a shard pool wedges (its link
// stalls every read, so the kernel buffers fill and the publisher's
// vectored write blocks). The write deadline must cut the wedged
// member loose, its shard-mates must lose nothing (the shard queue
// absorbs the bounded stall), and the other shard must never notice.
func TestStalledShardMemberIsolated(t *testing.T) {
	const (
		size    = 64 << 10 // large frames fill the kernel buffers fast
		healthy = 4
	)

	checkGoroutines(t)
	obs.CheckLeaks(t, 10*time.Second)
	reg := obs.NewRegistry()
	master := ros.NewLocalMaster()

	pubNode, err := ros.NewNode("stall_pub", ros.WithMaster(master), ros.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pubNode.Close() })
	healthyNode, err := ros.NewNode("stall_healthy", ros.WithMaster(master), ros.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { healthyNode.Close() })
	// The wedged subscriber reads through a permanently stalling link.
	fault := &netsim.Fault{StallProb: 1, Stall: 500 * time.Millisecond,
		Seed: 7, Grace: handshakeGrace}
	link := netsim.Link{Fault: fault}
	stallNode, err := ros.NewNode("stall_victim", ros.WithMaster(master),
		ros.WithDialer(link.Dialer()), ros.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stallNode.Close() })

	pub, err := ros.Advertise[std_msgs.String](pubNode, "/chaos/stall_shard",
		ros.WithEgressShards(2), ros.WithQueueSize(256),
		ros.WithWriteTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatalf("Advertise: %v", err)
	}

	recs := make([]*receiver, healthy)
	for i := range recs {
		recs[i] = newReceiver(size)
		rec := recs[i]
		if _, err := ros.Subscribe(healthyNode, "/chaos/stall_shard", func(m *std_msgs.String) {
			rec.accept(m.Data)
		}, ros.WithTransport(ros.TransportTCP)); err != nil {
			t.Fatalf("Subscribe(healthy %d): %v", i, err)
		}
	}
	stalled := newReceiver(size)
	stallStates := &stateRecorder{}
	stallSub, err := ros.Subscribe(stallNode, "/chaos/stall_shard", func(m *std_msgs.String) {
		stalled.accept(m.Data)
	}, ros.WithTransport(ros.TransportTCP), ros.WithRetry(fastRetry),
		ros.WithConnState(stallStates.record))
	if err != nil {
		t.Fatalf("Subscribe(stalled): %v", err)
	}
	eventually(t, 10*time.Second, "all five subscribers attached", func() bool {
		return pub.NumSubscribers() == healthy+1
	})

	// Pump until the wedged member has been cut loose: the kernel
	// buffers fill, the write deadline fires, and the shard drops the
	// connection. The victim is then closed so it stays gone (a live
	// one would re-wedge on every reconnect; its own reader may not
	// notice the severed link for a long time — it is still draining a
	// full receive buffer through 500ms stalls).
	stop := make(chan struct{})
	wait := pumpCounted(t, pub, size, stop)
	eventually(t, 30*time.Second, "write deadline cuts the wedged member loose", func() bool {
		return pub.NumSubscribers() == healthy
	})
	stallSub.Close()
	minDistinct := func() int {
		min := recs[0].distinct()
		for _, r := range recs[1:] {
			if d := r.distinct(); d < min {
				min = d
			}
		}
		return min
	}
	progressAtDrop := minDistinct()
	eventually(t, 15*time.Second, "healthy subscribers progress past the drop", func() bool {
		return minDistinct() >= progressAtDrop+50
	})
	close(stop)
	published := wait()
	eventually(t, 15*time.Second, "healthy subscribers catch up", func() bool {
		return minDistinct() == published
	})

	for i, r := range recs {
		if bad := r.corrupted(); len(bad) > 0 {
			t.Fatalf("healthy subscriber %d got %d corrupt payloads", i, len(bad))
		}
		if r.distinct() != published {
			t.Errorf("healthy subscriber %d lost traffic: %d/%d", i, r.distinct(), published)
		}
	}
	if fanout := reg.Snapshot().Egress.Fanout; fanout.ShardedConns != int64(healthy) {
		t.Errorf("sharded conns gauge = %d after the drop, want %d", fanout.ShardedConns, healthy)
	}
}
