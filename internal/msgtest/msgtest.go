// Package msgtest provides shared test fixtures: a registry loaded with
// the repository's .msg IDL tree, located by walking up from the test's
// working directory to the module root.
package msgtest

import (
	"os"
	"path/filepath"
	"testing"

	"rossf/internal/msg"
)

// ModuleRoot returns the repository root (the directory containing
// go.mod), walking up from the current working directory.
func ModuleRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatalf("getwd: %v", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root not found")
		}
		dir = parent
	}
}

// LoadRegistry returns a registry populated from msgs/idl and validated.
func LoadRegistry(t testing.TB) *msg.Registry {
	t.Helper()
	root := ModuleRoot(t)
	reg := msg.NewRegistry()
	if err := reg.LoadFS(os.DirFS(filepath.Join(root, "msgs")), "idl"); err != nil {
		t.Fatalf("load idl: %v", err)
	}
	if err := reg.Validate(); err != nil {
		t.Fatalf("validate idl: %v", err)
	}
	return reg
}

// ModuleRootB is ModuleRoot for benchmarks.
func ModuleRootB(b *testing.B) string { return ModuleRoot(b) }
