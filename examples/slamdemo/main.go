// SLAM demo: the paper's Fig. 17 application graph end-to-end.
//
// A pub_tum node publishes a synthetic TUM-like RGB sequence; an
// orbslam node tracks features and publishes the camera pose, a feature
// point cloud, and a debug image; three sink nodes receive them. All
// five nodes use serialization-free messages. The demo prints the
// tracked trajectory against the dataset's ground truth and the
// end-to-end latencies per output.
//
// Run with: go run ./examples/slamdemo [-frames 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"rossf/internal/bench"
	"rossf/internal/dataset"
	"rossf/internal/slam"
)

func main() {
	frames := flag.Int("frames", 40, "frames to process")
	width := flag.Int("width", 424, "frame width")
	height := flag.Int("height", 320, "frame height")
	flag.Parse()
	if err := run(*frames, *width, *height); err != nil {
		log.Fatal(err)
	}
}

func run(frames, width, height int) error {
	// First show the tracking quality directly: the pipeline recovers
	// the dataset's ground-truth camera motion.
	seq, err := dataset.NewSequence(dataset.Config{
		Width: width, Height: height, Frames: frames, Seed: 7,
	})
	if err != nil {
		return err
	}
	tracker := slam.NewTracker(slam.Config{})
	start := time.Now()
	for i := 0; i < frames; i++ {
		f, err := seq.Frame(i)
		if err != nil {
			return err
		}
		if _, err := tracker.Process(f.RGB, width, height, f.Depth); err != nil {
			return err
		}
	}
	perFrame := time.Since(start) / time.Duration(frames)
	pose := tracker.Pose()
	trueX, trueY := seq.TrueMotion(0, frames-1)
	fmt.Printf("tracking %d frames of %dx%d (%v per frame):\n", frames, width, height, perFrame)
	fmt.Printf("  estimated motion (%.1f, %.1f) px, ground truth (%.1f, %.1f) px, error %.1f px\n",
		pose.X, pose.Y, trueX, trueY, math.Hypot(pose.X-trueX, pose.Y-trueY))

	// Then run the full five-node graph in both regimes, as Fig. 18.
	fmt.Printf("\nrunning the Fig. 17 node graph (pub_tum -> orbslam -> 3 sinks)...\n")
	res, err := bench.RunFig18(bench.Fig18Config{
		Frames: frames, Warmup: 3, Width: width, Height: height,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}
