// Quickstart: the paper's Fig. 3 program pattern in both regimes.
//
// A publisher node and a subscriber node exchange sensor_msgs/Image over
// TCP loopback — first with regular (serializing) messages, then with
// serialization-free ones. The developer-visible code is the same shape;
// only the message type changes, and the serialization cost disappears.
//
// Run with: go run ./examples/quickstart
//
// Pass -metrics to print the observability snapshot afterwards: the
// per-topic instruments both regimes accumulated and the message
// manager's life-cycle gauges (allocs, frees, live high-water marks) —
// the same data a long-running node exports on its /metrics endpoint.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rossf/internal/core"
	"rossf/internal/msg"
	"rossf/internal/obs"
	"rossf/internal/ros"
	"rossf/msgs/sensor_msgs"
)

const (
	imageW   = 800
	imageH   = 600
	messages = 50
)

func main() {
	showMetrics := flag.Bool("metrics", false, "print the observability snapshot at the end")
	flag.Parse()
	if err := run(*showMetrics); err != nil {
		log.Fatal(err)
	}
}

func run(showMetrics bool) error {
	master := ros.NewLocalMaster()
	reg := obs.NewRegistry()
	pubNode, err := ros.NewNode("talker", ros.WithMaster(master), ros.WithMetrics(reg))
	if err != nil {
		return err
	}
	defer pubNode.Close()
	subNode, err := ros.NewNode("listener", ros.WithMaster(master), ros.WithMetrics(reg))
	if err != nil {
		return err
	}
	defer subNode.Close()

	regular, err := runRegular(pubNode, subNode)
	if err != nil {
		return err
	}
	sfm, err := runSFM(pubNode, subNode)
	if err != nil {
		return err
	}

	fmt.Printf("\n%dx%d rgb8 image (%d KiB), %d messages over TCP loopback:\n",
		imageW, imageH, imageW*imageH*3/1024, messages)
	fmt.Printf("  ROS    (serialize + de-serialize): mean %v\n", regular)
	fmt.Printf("  ROS-SF (serialization-free):       mean %v\n", sfm)
	fmt.Printf("  reduction: %.1f%%\n", (1-float64(sfm)/float64(regular))*100)

	if showMetrics {
		printMetrics(reg)
	}
	return nil
}

// printMetrics renders the registry snapshot: per-topic instruments and
// the core life-cycle gauges.
func printMetrics(reg *obs.Registry) {
	snap := reg.Snapshot()
	fmt.Printf("\nobservability snapshot:\n")
	for _, topic := range reg.Topics() {
		if ps, ok := snap.Publishers[topic]; ok {
			fmt.Printf("  pub %-20s %d msgs, %d bytes, %d drops\n",
				topic, ps.Messages, ps.Bytes, ps.Drops)
		}
		if ss, ok := snap.Subscribers[topic]; ok {
			fmt.Printf("  sub %-20s %d msgs, p50 %v, p99 %v\n",
				topic, ss.Messages, ss.Latency.P50, ss.Latency.P99)
		}
	}
	c := snap.Core
	fmt.Printf("  core: %d allocs, %d frees, %d live (max %d, %d bytes peak)\n",
		c.Allocs, c.Frees, c.Live, c.MaxLive, c.MaxBytesLive)
}

// runRegular is the classic ROS pattern: the publish call serializes,
// the subscriber callback receives a freshly de-serialized object.
func runRegular(pubNode, subNode *ros.Node) (time.Duration, error) {
	got := make(chan time.Duration, 1)
	sub, err := ros.Subscribe(subNode, "camera/image", func(img *sensor_msgs.Image) {
		got <- time.Since(img.Header.Stamp.ToTime())
	}, ros.WithTransport(ros.TransportTCP))
	if err != nil {
		return 0, err
	}
	defer sub.Close()
	pub, err := ros.Advertise[sensor_msgs.Image](pubNode, "camera/image")
	if err != nil {
		return 0, err
	}
	defer pub.Close()
	awaitAttach(pub.NumSubscribers)

	var total time.Duration
	for i := 0; i < messages; i++ {
		img := &sensor_msgs.Image{
			Height:   imageH,
			Width:    imageW,
			Encoding: "rgb8",
			Step:     imageW * 3,
			Data:     make([]uint8, imageW*imageH*3),
		}
		img.Header.Stamp = msg.NewTime(time.Now())
		img.Header.FrameID = "camera"
		fillPixels(img.Data, i)

		if err := pub.Publish(img); err != nil {
			return 0, err
		}
		total += <-got
	}
	return total / messages, nil
}

// runSFM is the same code with the SF message type: the message is
// constructed inside its own wire buffer, so Publish sends it as-is and
// the callback sees the received buffer as a live message.
func runSFM(pubNode, subNode *ros.Node) (time.Duration, error) {
	got := make(chan time.Duration, 1)
	sub, err := ros.Subscribe(subNode, "camera/image_sf", func(img *sensor_msgs.ImageSF) {
		got <- time.Since(img.Header.Stamp.ToTime())
	}, ros.WithTransport(ros.TransportTCP))
	if err != nil {
		return 0, err
	}
	defer sub.Close()
	pub, err := ros.Advertise[sensor_msgs.ImageSF](pubNode, "camera/image_sf")
	if err != nil {
		return 0, err
	}
	defer pub.Close()
	awaitAttach(pub.NumSubscribers)

	var total time.Duration
	for i := 0; i < messages; i++ {
		img, err := sensor_msgs.NewImageSF()
		if err != nil {
			return 0, err
		}
		img.Height = imageH
		img.Width = imageW
		img.Step = imageW * 3
		img.Header.Stamp = msg.NewTime(time.Now())
		if err := img.Header.FrameID.Set("camera"); err != nil {
			return 0, err
		}
		if err := img.Encoding.Set("rgb8"); err != nil {
			return 0, err
		}
		if err := img.Data.Resize(imageW * imageH * 3); err != nil {
			return 0, err
		}
		fillPixels(img.Data.Slice(), i)

		if err := pub.Publish(img); err != nil {
			return 0, err
		}
		if _, err := core.Release(img); err != nil {
			return 0, err
		}
		total += <-got
	}
	return total / messages, nil
}

func fillPixels(data []byte, seed int) {
	for i := range data {
		data[i] = byte(i + seed)
	}
}

func awaitAttach(num func() int) {
	for num() == 0 {
		time.Sleep(time.Millisecond)
	}
}
