// Image pipeline: the scenario of the paper's first failure case
// (Fig. 19), written the SFM-compatible way.
//
// Three nodes form a pipeline: a camera publishes frames, a rotate node
// transforms each frame (rotating the image 180°) and republishes it
// under a new coordinate frame, and a sink verifies the output. The
// rotate node is exactly the image_rotate_nodelet situation: it must
// change header.frame_id on its output — the rewrite the paper suggests
// (set the frame id at the single construction site, never reassign)
// keeps it serialization-free.
//
// Run with: go run ./examples/imagepipeline
package main

import (
	"fmt"
	"log"
	"time"

	"rossf/internal/core"
	"rossf/internal/msg"
	"rossf/internal/ros"
	"rossf/msgs/sensor_msgs"
)

const (
	width  = 320
	height = 240
	frames = 30
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	master := ros.NewLocalMaster()
	camera, err := ros.NewNode("camera", ros.WithMaster(master))
	if err != nil {
		return err
	}
	defer camera.Close()
	rotate, err := ros.NewNode("image_rotate", ros.WithMaster(master))
	if err != nil {
		return err
	}
	defer rotate.Close()
	sink, err := ros.NewNode("viewer", ros.WithMaster(master))
	if err != nil {
		return err
	}
	defer sink.Close()

	// Rotate node: subscribe raw frames, publish rotated ones.
	rotPub, err := ros.Advertise[sensor_msgs.ImageSF](rotate, "image/rotated")
	if err != nil {
		return err
	}
	_, err = ros.Subscribe(rotate, "image/raw", func(in *sensor_msgs.ImageSF) {
		out, err := sensor_msgs.NewImageSF()
		if err != nil {
			return
		}
		defer core.Release(out)
		// Fig. 19's rewrite: every field — including the *new* frame id —
		// is assigned exactly once while constructing the output.
		out.Header.Seq = in.Header.Seq
		out.Header.Stamp = in.Header.Stamp
		out.Header.FrameID.MustSet("camera_rotated")
		out.Height, out.Width, out.Step = in.Height, in.Width, in.Step
		out.Encoding.MustSet(in.Encoding.Get())
		out.Data.MustResize(in.Data.Len())
		rotate180(in.Data.Slice(), out.Data.Slice())
		rotPub.Publish(out)
	})
	if err != nil {
		return err
	}

	// Sink node: verify rotation and report latency.
	type verdict struct {
		ok      bool
		frameID string
		latency time.Duration
	}
	results := make(chan verdict, 1)
	_, err = ros.Subscribe(sink, "image/rotated", func(img *sensor_msgs.ImageSF) {
		data := img.Data.Slice()
		// The first pixel of a rotated frame is the last source pixel;
		// the camera stamped the frame number into that pixel's blue
		// channel (its final byte), which lands at index 2.
		ok := len(data) > 2 && data[2] == byte(img.Header.Seq)
		results <- verdict{
			ok:      ok,
			frameID: img.Header.FrameID.Get(),
			latency: time.Since(img.Header.Stamp.ToTime()),
		}
	})
	if err != nil {
		return err
	}

	camPub, err := ros.Advertise[sensor_msgs.ImageSF](camera, "image/raw")
	if err != nil {
		return err
	}
	for camPub.NumSubscribers() == 0 || rotPub.NumSubscribers() == 0 {
		time.Sleep(time.Millisecond)
	}

	var total time.Duration
	bad := 0
	for i := 0; i < frames; i++ {
		img, err := sensor_msgs.NewImageSF()
		if err != nil {
			return err
		}
		img.Header.Seq = uint32(i)
		img.Header.Stamp = msg.NewTime(time.Now())
		img.Header.FrameID.MustSet("camera")
		img.Height, img.Width, img.Step = height, width, width*3
		img.Encoding.MustSet("rgb8")
		img.Data.MustResize(width * height * 3)
		data := img.Data.Slice()
		for p := range data {
			data[p] = byte(p)
		}
		data[len(data)-1] = byte(i) // marker the sink checks after rotation

		if err := camPub.Publish(img); err != nil {
			return err
		}
		core.Release(img)

		v := <-results
		if !v.ok || v.frameID != "camera_rotated" {
			bad++
		}
		total += v.latency
	}

	fmt.Printf("pipeline camera -> rotate -> viewer, %d frames of %dx%d rgb8\n", frames, width, height)
	fmt.Printf("  rotated frames verified: %d/%d (frame_id rewritten to camera_rotated)\n", frames-bad, frames)
	fmt.Printf("  mean end-to-end latency across both hops: %v\n", total/frames)
	fmt.Println("  every message crossed two topics with zero serialization")
	return nil
}

// rotate180 writes src rotated by 180° into dst (both rgb8).
func rotate180(src, dst []byte) {
	n := len(src) / 3
	for i := 0; i < n; i++ {
		j := n - 1 - i
		dst[3*i], dst[3*i+1], dst[3*i+2] = src[3*j], src[3*j+1], src[3*j+2]
	}
}
