// Ping-pong: the paper's Fig. 15 inter-machine topology on the
// simulated 10 GbE link.
//
// Node pub (machine A) publishes images on topic ping; node trans
// (machine B) echoes each into topic pong with the original timestamp;
// node sub (machine A) measures the round trip. Cross-machine hops are
// paced by internal/netsim. Both regimes run back to back.
//
// Run with: go run ./examples/pingpong [-gbps 10] [-size 1MB]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rossf/internal/bench"
	"rossf/internal/netsim"
)

func main() {
	gbps := flag.Float64("gbps", 10, "simulated link bandwidth, Gb/s")
	latency := flag.Duration("latency", 50*time.Microsecond, "simulated one-way latency")
	messages := flag.Int("messages", 30, "ping-pong rounds per size")
	flag.Parse()
	if err := run(*gbps, *latency, *messages); err != nil {
		log.Fatal(err)
	}
}

func run(gbps float64, latency time.Duration, messages int) error {
	link := netsim.Link{BitsPerSecond: gbps * 1e9, Latency: latency}
	fmt.Printf("simulated link: %.0f Gb/s, %v one-way latency\n\n", gbps, latency)

	res, err := bench.RunFig16(bench.Fig16Config{
		Messages: messages,
		Warmup:   3,
		Link:     link,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}
