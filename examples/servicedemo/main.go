// Service demo: the request/response half of the middleware, plus
// latched topics.
//
// A "mapping" node serves two services — AddTwoInts (regular messages)
// and a blob service using serialization-free messages, where request
// and response travel as arena bytes — and publishes a latched map
// image that late-joining nodes receive immediately.
//
// Run with: go run ./examples/servicedemo
package main

import (
	"fmt"
	"log"
	"time"

	"rossf/internal/core"
	"rossf/internal/ros"
	"rossf/msgs/rospy_tutorials"
	"rossf/msgs/sensor_msgs"
	"rossf/msgs/std_srvs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	master := ros.NewLocalMaster()
	server, err := ros.NewNode("mapping", ros.WithMaster(master))
	if err != nil {
		return err
	}
	defer server.Close()
	client, err := ros.NewNode("planner", ros.WithMaster(master))
	if err != nil {
		return err
	}
	defer client.Close()

	// 1. A classic regular-message service.
	sumSrv, err := ros.AdvertiseService(server, rospy_tutorials.AddTwoIntsServiceName,
		func(req *rospy_tutorials.AddTwoIntsRequest) (*rospy_tutorials.AddTwoIntsResponse, error) {
			return &rospy_tutorials.AddTwoIntsResponse{Sum: req.A + req.B}, nil
		})
	if err != nil {
		return err
	}
	defer sumSrv.Close()

	resp, err := ros.CallService[rospy_tutorials.AddTwoIntsRequest, rospy_tutorials.AddTwoIntsResponse](
		client, rospy_tutorials.AddTwoIntsServiceName,
		&rospy_tutorials.AddTwoIntsRequest{A: 1200, B: 34})
	if err != nil {
		return err
	}
	fmt.Printf("AddTwoInts(1200, 34) = %d\n", resp.Sum)

	// 2. A serialization-free service: enabling "hardware" flips a mode
	// and answers with an SFM response whose string payload lives in the
	// response arena.
	enableSrv, err := ros.AdvertiseService(server, "hardware/enable",
		func(req *std_srvs.SetBoolRequestSF) (*std_srvs.SetBoolResponseSF, error) {
			out, err := core.New[std_srvs.SetBoolResponseSF]()
			if err != nil {
				return nil, err
			}
			out.Success = true
			if req.Data {
				out.Message.MustSet("lidar enabled")
			} else {
				out.Message.MustSet("lidar disabled")
			}
			return out, nil
		})
	if err != nil {
		return err
	}
	defer enableSrv.Close()

	svcClient, err := ros.NewServiceClient[std_srvs.SetBoolRequestSF, std_srvs.SetBoolResponseSF](
		client, "hardware/enable")
	if err != nil {
		return err
	}
	defer svcClient.Close()
	for _, enable := range []bool{true, false} {
		req, err := core.New[std_srvs.SetBoolRequestSF]()
		if err != nil {
			return err
		}
		req.Data = enable
		out, err := svcClient.Call(req)
		core.Release(req)
		if err != nil {
			return err
		}
		fmt.Printf("SetBool(%v) -> success=%v message=%q (zero serialization)\n",
			enable, out.Success, out.Message.Get())
		core.Release(out)
	}

	// 3. A latched map: published once, delivered to every late joiner.
	mapPub, err := ros.Advertise[sensor_msgs.ImageSF](server, "map/image", ros.WithLatch())
	if err != nil {
		return err
	}
	grid, err := sensor_msgs.NewImageSF()
	if err != nil {
		return err
	}
	grid.Height, grid.Width, grid.Step = 64, 64, 192
	grid.Encoding.MustSet("rgb8")
	grid.Data.MustResize(64 * 64 * 3)
	if err := mapPub.Publish(grid); err != nil {
		return err
	}
	core.Release(grid)

	// The late joiner subscribes well after the publish...
	late, err := ros.NewNode("late_viewer", ros.WithMaster(master))
	if err != nil {
		return err
	}
	defer late.Close()
	gotMap := make(chan int, 1)
	if _, err := ros.Subscribe(late, "map/image", func(m *sensor_msgs.ImageSF) {
		gotMap <- m.Data.Len()
	}); err != nil {
		return err
	}
	select {
	case n := <-gotMap:
		fmt.Printf("late subscriber received the latched %d-byte map without a new publish\n", n)
	case <-time.After(5 * time.Second):
		return fmt.Errorf("latched map never arrived")
	}
	return nil
}
