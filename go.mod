module rossf

go 1.24
