// Package rossf is a from-scratch Go reproduction of "ROS-SF: A
// Transparent and Efficient ROS Middleware using Serialization-Free
// Message" (Wang, Dong, Tan — Middleware '22).
//
// The repository implements the paper's contribution and every substrate
// it depends on:
//
//   - internal/core — the SFM serialization-free message format and the
//     message life-cycle manager (the paper's §4);
//   - internal/msg + cmd/sfmgen — the ROS .msg IDL toolchain and code
//     generator producing both regular and SFM message classes (msgs/);
//   - internal/ros — a miniature ROS1-like middleware (graph master,
//     nodes, topics, TCPROS-like transport) carrying both regimes;
//   - internal/ser/{rosser,protoser,flatser,cdrser} — the serialization
//     baselines of the paper's Fig. 14 comparison;
//   - internal/checker + cmd/sfcheck — the ROS-SF Converter analog and
//     the applicability study of Table 1;
//   - internal/netsim, internal/dataset, internal/slam — the simulated
//     10 GbE link, TUM-like dataset, and ORB-SLAM-like workload behind
//     Figs. 16 and 18;
//   - internal/bench + cmd/rossf-bench — the harness regenerating every
//     table and figure of the evaluation.
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package rossf

// Version identifies this reproduction release.
const Version = "1.0.0"
