#!/bin/sh
# stats_smoke.sh — end-to-end check of the observability surface.
#
# Boots a standalone rosmaster and a synthetic SFM publisher with its
# metrics endpoint enabled, then verifies that
#
#   1. `rostopic stats` reports live per-topic instrument data (rate,
#      bandwidth, drops, latency quantiles), and
#   2. the node's /metrics endpoint serves a JSON snapshot with the
#      expected schema (node name, per-topic publisher instruments,
#      core life-cycle gauges, graph-plane resilience instruments, and
#      the sharded fan-out plane: per-shard egress counters plus the
#      relay-tier gauges).
#
# Run via `make stats-smoke`. Requires curl; uses jq for JSON schema
# validation when available, plain key grep otherwise.
set -eu

BIN="$(mktemp -d)"
MASTER_PID=""
PUB_PID=""
cleanup() {
    [ -n "$PUB_PID" ] && kill "$PUB_PID" 2>/dev/null || true
    [ -n "$MASTER_PID" ] && kill "$MASTER_PID" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

echo "stats-smoke: building tools"
go build -o "$BIN" ./cmd/rosmaster ./cmd/rospub ./cmd/rostopic

"$BIN/rosmaster" -addr 127.0.0.1:0 >"$BIN/master.log" 2>&1 &
MASTER_PID=$!
MASTER=""
for _ in $(seq 1 100); do
    MASTER=$(sed -n 's/^rosmaster: serving on //p' "$BIN/master.log")
    [ -n "$MASTER" ] && break
    sleep 0.1
done
if [ -z "$MASTER" ]; then
    echo "stats-smoke: rosmaster did not start" >&2
    cat "$BIN/master.log" >&2
    exit 1
fi

# -shards 2 forces the sharded egress path, so the rostopic subscription
# below (plain TCP: rospub does not enable shm) lands in the shard pool
# and the fanout section of the snapshot carries live per-shard data.
"$BIN/rospub" -master "$MASTER" -sfm -rate 100 -width 64 -height 64 \
    -shards 2 -metrics 127.0.0.1:0 >"$BIN/pub.log" 2>&1 &
PUB_PID=$!
METRICS=""
for _ in $(seq 1 100); do
    METRICS=$(sed -n 's/^rospub: metrics on //p' "$BIN/pub.log")
    [ -n "$METRICS" ] && break
    sleep 0.1
done
if [ -z "$METRICS" ]; then
    echo "stats-smoke: rospub did not expose a metrics endpoint" >&2
    cat "$BIN/pub.log" >&2
    exit 1
fi

echo "stats-smoke: sampling topic instruments via rostopic stats"
OUT=$("$BIN/rostopic" -master "$MASTER" -duration 2s stats camera/image)
echo "$OUT"
for want in "rate:" "bandwidth:" "drops:" "p50" "p95" "p99"; do
    if ! echo "$OUT" | grep -q "$want"; then
        echo "stats-smoke: stats output missing \"$want\"" >&2
        exit 1
    fi
done

echo "stats-smoke: checking /metrics JSON schema"
JSON=$(curl -fsS "http://$METRICS/metrics")
if command -v jq >/dev/null 2>&1; then
    echo "$JSON" | jq -e '
        .node == "rospub"
        and (.obs.publishers["camera/image"].messages > 0)
        and (.obs.core | has("live") and has("max_live")
             and has("state_published") and has("bytes_live"))
        and (.obs | has("subscribers") and has("services"))
        and (.obs.graph | has("master_reconnects") and has("replays")
             and has("resync") and has("ghost_expiries")
             and has("malformed_lines") and has("degraded")
             and has("failovers") and has("failed_candidates")
             and has("epoch") and has("replication_lag_ms"))
        and (.obs.graph.degraded == 0)
        and (.obs.graph.failovers == 0)
        and (.obs.graph.epoch >= 1)
        and (.obs.egress | has("writes") and has("frames") and has("coalesced_frames"))
        and (.obs.egress.fanout.active_shards == 2)
        and (.obs.egress.fanout | has("sharded_conns") and has("rebalances")
             and has("shard_drops"))
        and (.obs.egress.fanout.shards | length == 2)
        and ([.obs.egress.fanout.shards[]
              | has("conns") and has("frames") and has("writes") and has("bytes")]
             | all)
        and ([.obs.egress.fanout.shards[].frames] | add > 0)
        and (.obs.relay | has("active") and has("frames_in") and has("bytes_in")
             and has("frames_out") and has("drops") and has("mismatches"))
        and (.obs.shm | has("segments_mapped") and has("bytes_shared")
             and has("descriptor_sends") and has("fallbacks")
             and has("promotions") and has("leases_reaped"))
        and (.obs.shm.fallbacks_by_reason
             | has("oversized") and has("heap_arena") and has("peer_table_full")
               and has("remote_peer") and has("old_build"))
        and (.obs.fieldwire | has("masked_subscriptions") and has("sparse_frames")
             and has("full_frames") and has("bytes_saved") and has("mask_rejects")
             and has("decode_errors") and has("mask_fallbacks"))
        and (.obs.fieldwire.rejects_by_reason
             | has("no_wire_map") and has("unmappable_field") and has("variable_tail"))
    ' >/dev/null || {
        echo "stats-smoke: /metrics JSON failed schema check:" >&2
        echo "$JSON" >&2
        exit 1
    }
else
    for key in '"node"' '"obs"' '"publishers"' '"core"' '"live"' '"max_live"' \
        '"fanout"' '"active_shards"' '"shards"' '"relay"' '"frames_in"' \
        '"failovers"' '"failed_candidates"' '"epoch"' '"replication_lag_ms"' \
        '"fallbacks_by_reason"' '"heap_arena"' '"promotions"' \
        '"fieldwire"' '"masked_subscriptions"' '"sparse_frames"' '"bytes_saved"' \
        '"mask_rejects"' '"rejects_by_reason"' '"no_wire_map"'; do
        if ! echo "$JSON" | grep -q "$key"; then
            echo "stats-smoke: /metrics JSON missing $key" >&2
            exit 1
        fi
    done
fi

echo "stats-smoke: OK"
