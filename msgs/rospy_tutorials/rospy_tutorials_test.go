package rospy_tutorials_test

import (
	"testing"

	"rossf/internal/core"
	"rossf/internal/msgtest"
	"rossf/internal/ros"
	"rossf/internal/wire"
	"rossf/msgs/rospy_tutorials"
)

// TestRoundTrips serializes and deserializes the service halves,
// checking that SerializedSizeROS is exact.
func TestRoundTrips(t *testing.T) {
	t.Run("AddTwoIntsRequest", func(t *testing.T) {
		in := &rospy_tutorials.AddTwoIntsRequest{A: -9_000_000_000, B: 123}
		w := wire.NewWriter(in.SerializedSizeROS())
		if err := in.SerializeROS(w); err != nil {
			t.Fatal(err)
		}
		if w.Len() != in.SerializedSizeROS() {
			t.Errorf("serialized %d bytes, SerializedSizeROS says %d", w.Len(), in.SerializedSizeROS())
		}
		var out rospy_tutorials.AddTwoIntsRequest
		if err := out.DeserializeROS(wire.NewReader(w.Bytes())); err != nil {
			t.Fatal(err)
		}
		if out != *in {
			t.Errorf("round trip lost data: %+v", out)
		}
	})
	t.Run("AddTwoIntsResponse", func(t *testing.T) {
		in := &rospy_tutorials.AddTwoIntsResponse{Sum: 1 << 40}
		w := wire.NewWriter(in.SerializedSizeROS())
		if err := in.SerializeROS(w); err != nil {
			t.Fatal(err)
		}
		var out rospy_tutorials.AddTwoIntsResponse
		if err := out.DeserializeROS(wire.NewReader(w.Bytes())); err != nil {
			t.Fatal(err)
		}
		if out != *in {
			t.Errorf("round trip lost data: %+v", out)
		}
	})
}

// TestMD5MatchesRegistry pins the generated checksums — including the
// combined service checksum used in the connection handshake — against
// an independent computation from the IDL source.
func TestMD5MatchesRegistry(t *testing.T) {
	reg := msgtest.LoadRegistry(t)
	cases := []struct {
		full string
		got  string
	}{
		{"rospy_tutorials/AddTwoIntsRequest", (*rospy_tutorials.AddTwoIntsRequest)(nil).ROSMD5Sum()},
		{"rospy_tutorials/AddTwoIntsResponse", (*rospy_tutorials.AddTwoIntsResponse)(nil).ROSMD5Sum()},
		{"rospy_tutorials/AddTwoIntsRequest", (*rospy_tutorials.AddTwoIntsRequestSF)(nil).ROSMD5Sum()},
		{"rospy_tutorials/AddTwoIntsResponse", (*rospy_tutorials.AddTwoIntsResponseSF)(nil).ROSMD5Sum()},
	}
	for _, tc := range cases {
		want, err := reg.MD5(tc.full)
		if err != nil {
			t.Fatalf("registry MD5(%s): %v", tc.full, err)
		}
		if tc.got != want {
			t.Errorf("%s: generated %s, registry %s", tc.full, tc.got, want)
		}
	}
	srvMD5, err := reg.ServiceMD5(rospy_tutorials.AddTwoIntsServiceName)
	if err != nil {
		t.Fatalf("registry ServiceMD5: %v", err)
	}
	if rospy_tutorials.AddTwoIntsServiceMD5 != srvMD5 {
		t.Errorf("service MD5: generated %s, registry %s",
			rospy_tutorials.AddTwoIntsServiceMD5, srvMD5)
	}
}

// TestServiceEndToEndBothRegimes calls AddTwoInts through the
// middleware in both wire regimes.
func TestServiceEndToEndBothRegimes(t *testing.T) {
	master := ros.NewLocalMaster()
	serverNode, err := ros.NewNode("server", ros.WithMaster(master))
	if err != nil {
		t.Fatal(err)
	}
	defer serverNode.Close()
	clientNode, err := ros.NewNode("client", ros.WithMaster(master))
	if err != nil {
		t.Fatal(err)
	}
	defer clientNode.Close()

	t.Run("regular", func(t *testing.T) {
		srv, err := ros.AdvertiseService(serverNode, rospy_tutorials.AddTwoIntsServiceName,
			func(req *rospy_tutorials.AddTwoIntsRequest) (*rospy_tutorials.AddTwoIntsResponse, error) {
				return &rospy_tutorials.AddTwoIntsResponse{Sum: req.A + req.B}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		resp, err := ros.CallService[rospy_tutorials.AddTwoIntsRequest, rospy_tutorials.AddTwoIntsResponse](
			clientNode, rospy_tutorials.AddTwoIntsServiceName,
			&rospy_tutorials.AddTwoIntsRequest{A: -5, B: 7})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Sum != 2 {
			t.Errorf("Sum = %d", resp.Sum)
		}
	})

	t.Run("sfm", func(t *testing.T) {
		srv, err := ros.AdvertiseService(serverNode, "add_sf",
			func(req *rospy_tutorials.AddTwoIntsRequestSF) (*rospy_tutorials.AddTwoIntsResponseSF, error) {
				resp, err := rospy_tutorials.NewAddTwoIntsResponseSF()
				if err != nil {
					return nil, err
				}
				resp.Sum = req.A + req.B
				return resp, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		req, err := rospy_tutorials.NewAddTwoIntsRequestSF()
		if err != nil {
			t.Fatal(err)
		}
		req.A, req.B = 40, 2
		resp, err := ros.CallService[rospy_tutorials.AddTwoIntsRequestSF, rospy_tutorials.AddTwoIntsResponseSF](
			clientNode, "add_sf", req)
		core.Release(req)
		if err != nil {
			t.Fatal(err)
		}
		defer core.Release(resp)
		if resp.Sum != 42 {
			t.Errorf("Sum = %d", resp.Sum)
		}
	})
}
