package std_msgs_test

import (
	"testing"
	"time"

	"rossf/internal/core"
	"rossf/internal/msgtest"
	"rossf/internal/ros"
	"rossf/internal/wire"
	"rossf/msgs/std_msgs"
)

// TestRoundTrips serializes and deserializes every regular std_msgs
// type, checking that SerializedSizeROS is exact.
func TestRoundTrips(t *testing.T) {
	t.Run("ColorRGBA", func(t *testing.T) {
		in := &std_msgs.ColorRGBA{R: 0.25, G: 0.5, B: 0.75, A: 1}
		w := wire.NewWriter(in.SerializedSizeROS())
		if err := in.SerializeROS(w); err != nil {
			t.Fatal(err)
		}
		if w.Len() != in.SerializedSizeROS() {
			t.Errorf("serialized %d bytes, SerializedSizeROS says %d", w.Len(), in.SerializedSizeROS())
		}
		var out std_msgs.ColorRGBA
		if err := out.DeserializeROS(wire.NewReader(w.Bytes())); err != nil {
			t.Fatal(err)
		}
		if out != *in {
			t.Errorf("round trip lost data: %+v", out)
		}
	})
	t.Run("Header", func(t *testing.T) {
		in := &std_msgs.Header{Seq: 7, FrameID: "base_link"}
		in.Stamp.Sec, in.Stamp.Nsec = 1700000000, 500
		w := wire.NewWriter(in.SerializedSizeROS())
		if err := in.SerializeROS(w); err != nil {
			t.Fatal(err)
		}
		if w.Len() != in.SerializedSizeROS() {
			t.Errorf("serialized %d bytes, SerializedSizeROS says %d", w.Len(), in.SerializedSizeROS())
		}
		var out std_msgs.Header
		if err := out.DeserializeROS(wire.NewReader(w.Bytes())); err != nil {
			t.Fatal(err)
		}
		if out != *in {
			t.Errorf("round trip lost data: %+v", out)
		}
	})
	t.Run("String", func(t *testing.T) {
		in := &std_msgs.String{Data: "hello, wire"}
		w := wire.NewWriter(in.SerializedSizeROS())
		if err := in.SerializeROS(w); err != nil {
			t.Fatal(err)
		}
		var out std_msgs.String
		if err := out.DeserializeROS(wire.NewReader(w.Bytes())); err != nil {
			t.Fatal(err)
		}
		if out.Data != in.Data {
			t.Errorf("round trip lost data: %q", out.Data)
		}
	})
}

// TestMD5MatchesRegistry pins the generated checksums against an
// independent computation from the IDL source — the compatibility
// contract with genmsg-era ROS nodes.
func TestMD5MatchesRegistry(t *testing.T) {
	reg := msgtest.LoadRegistry(t)
	cases := []struct {
		full string
		got  string
	}{
		{"std_msgs/ColorRGBA", (*std_msgs.ColorRGBA)(nil).ROSMD5Sum()},
		{"std_msgs/Header", (*std_msgs.Header)(nil).ROSMD5Sum()},
		{"std_msgs/String", (*std_msgs.String)(nil).ROSMD5Sum()},
		{"std_msgs/ColorRGBA", (*std_msgs.ColorRGBASF)(nil).ROSMD5Sum()},
		{"std_msgs/Header", (*std_msgs.HeaderSF)(nil).ROSMD5Sum()},
		{"std_msgs/String", (*std_msgs.StringSF)(nil).ROSMD5Sum()},
	}
	for _, tc := range cases {
		want, err := reg.MD5(tc.full)
		if err != nil {
			t.Fatalf("registry MD5(%s): %v", tc.full, err)
		}
		if tc.got != want {
			t.Errorf("%s: generated %s, registry %s", tc.full, tc.got, want)
		}
	}
}

// TestSFMConstruction exercises the serialization-free variants
// through the arena: allocate, populate, image, adopt.
func TestSFMConstruction(t *testing.T) {
	h, err := std_msgs.NewHeaderSF()
	if err != nil {
		t.Fatal(err)
	}
	h.Seq = 42
	h.Stamp.Sec = 100
	h.FrameID.MustSet("lidar")
	img, err := core.Bytes(h)
	if err != nil {
		t.Fatal(err)
	}
	buf := core.Default().GetBuffer(len(img))
	copy(buf.Bytes(), img)
	got, err := core.Adopt[std_msgs.HeaderSF](buf, len(img))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 42 || got.Stamp.Sec != 100 || got.FrameID.Get() != "lidar" {
		t.Errorf("adopted header lost data: seq=%d frame=%q", got.Seq, got.FrameID.Get())
	}
	core.Release(got)
	core.Release(h)
}

// TestPubSubBothRegimes round-trips String and StringSF through the
// middleware over TCP.
func TestPubSubBothRegimes(t *testing.T) {
	master := ros.NewLocalMaster()
	pubNode, err := ros.NewNode("pub", ros.WithMaster(master))
	if err != nil {
		t.Fatal(err)
	}
	defer pubNode.Close()
	subNode, err := ros.NewNode("sub", ros.WithMaster(master))
	if err != nil {
		t.Fatal(err)
	}
	defer subNode.Close()

	t.Run("regular", func(t *testing.T) {
		got := make(chan string, 1)
		sub, err := ros.Subscribe(subNode, "/strings", func(m *std_msgs.String) {
			select {
			case got <- m.Data:
			default:
			}
		}, ros.WithTransport(ros.TransportTCP))
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		pub, err := ros.Advertise[std_msgs.String](pubNode, "/strings", ros.WithLatch())
		if err != nil {
			t.Fatal(err)
		}
		defer pub.Close()
		if err := pub.Publish(&std_msgs.String{Data: "over the wire"}); err != nil {
			t.Fatal(err)
		}
		select {
		case v := <-got:
			if v != "over the wire" {
				t.Errorf("received %q", v)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("no delivery")
		}
	})

	t.Run("sfm", func(t *testing.T) {
		got := make(chan string, 1)
		sub, err := ros.Subscribe(subNode, "/strings_sf", func(m *std_msgs.StringSF) {
			select {
			case got <- m.Data.Get():
			default:
			}
		}, ros.WithTransport(ros.TransportTCP))
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		pub, err := ros.Advertise[std_msgs.StringSF](pubNode, "/strings_sf", ros.WithLatch())
		if err != nil {
			t.Fatal(err)
		}
		defer pub.Close()
		m, err := std_msgs.NewStringSF()
		if err != nil {
			t.Fatal(err)
		}
		m.Data.MustSet("zero copies")
		if err := pub.Publish(m); err != nil {
			t.Fatal(err)
		}
		core.Release(m)
		select {
		case v := <-got:
			if v != "zero copies" {
				t.Errorf("received %q", v)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("no delivery")
		}
	})
}
