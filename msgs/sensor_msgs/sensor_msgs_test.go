package sensor_msgs_test

import (
	"bytes"
	"testing"
	"time"

	"rossf/internal/core"
	"rossf/internal/msg"
	"rossf/internal/msgtest"
	"rossf/internal/ros"
	"rossf/internal/ser/rosser"
	"rossf/internal/wire"
	"rossf/msgs/sensor_msgs"
	"rossf/msgs/std_msgs"
)

// TestGeneratedMatchesDynamicCodec cross-validates the generated ROS1
// serializer against the schema-driven rosser codec: identical field
// values must produce identical wire bytes.
func TestGeneratedMatchesDynamicCodec(t *testing.T) {
	m := &sensor_msgs.Image{
		Header: std_msgs.Header{
			Seq:     7,
			Stamp:   msg.Time{Sec: 100, Nsec: 2000},
			FrameID: "camera_link",
		},
		Height:      2,
		Width:       3,
		Encoding:    "rgb8",
		IsBigendian: 0,
		Step:        9,
		Data:        []uint8{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18},
	}
	w := wire.NewWriter(256)
	if err := m.SerializeROS(w); err != nil {
		t.Fatal(err)
	}

	reg := msgtest.LoadRegistry(t)
	spec, _ := reg.Lookup("sensor_msgs/Image")
	d, err := msg.NewDynamic(spec, reg)
	if err != nil {
		t.Fatal(err)
	}
	hdr := d.Fields["header"].(*msg.Dynamic)
	hdr.Set("seq", uint32(7))
	hdr.Set("stamp", msg.Time{Sec: 100, Nsec: 2000})
	hdr.Set("frame_id", "camera_link")
	d.Set("height", uint32(2))
	d.Set("width", uint32(3))
	d.Set("encoding", "rgb8")
	d.Set("is_bigendian", uint8(0))
	d.Set("step", uint32(9))
	d.Set("data", m.Data)

	dynBytes, err := rosser.New(reg).Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Bytes(), dynBytes) {
		t.Errorf("generated and dynamic serializations differ:\n% x\n% x", w.Bytes(), dynBytes)
	}
}

func TestGeneratedRoundTrip(t *testing.T) {
	in := &sensor_msgs.CameraInfo{
		Height:          480,
		Width:           640,
		DistortionModel: "plumb_bob",
		D:               []float64{0.1, -0.2, 0.3},
		K:               [9]float64{500, 0, 320, 0, 500, 240, 0, 0, 1},
		Roi:             sensor_msgs.RegionOfInterest{Width: 640, Height: 480, DoRectify: true},
	}
	in.Header.FrameID = "cam"
	w := wire.NewWriter(256)
	if err := in.SerializeROS(w); err != nil {
		t.Fatal(err)
	}
	var out sensor_msgs.CameraInfo
	if err := out.DeserializeROS(wire.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if out.DistortionModel != "plumb_bob" || out.K != in.K || len(out.D) != 3 ||
		!out.Roi.DoRectify || out.Header.FrameID != "cam" {
		t.Errorf("round trip lost data: %+v", out)
	}
}

// TestMD5MatchesIDLRegistry checks the generated checksums equal the
// registry-computed ones, and that regular and SF variants share them.
func TestMD5MatchesIDLRegistry(t *testing.T) {
	reg := msgtest.LoadRegistry(t)
	want, err := reg.MD5("sensor_msgs/Image")
	if err != nil {
		t.Fatal(err)
	}
	var img sensor_msgs.Image
	var imgSF sensor_msgs.ImageSF
	if img.ROSMD5Sum() != want {
		t.Errorf("Image MD5 = %s, want %s", img.ROSMD5Sum(), want)
	}
	if imgSF.ROSMD5Sum() != want || imgSF.ROSMessageType() != img.ROSMessageType() {
		t.Error("SFM variant metadata differs from regular variant")
	}
}

func TestSFMImageConstructAndAdopt(t *testing.T) {
	img, err := sensor_msgs.NewImageSF()
	if err != nil {
		t.Fatal(err)
	}
	img.Header.Seq = 9
	img.Header.Stamp = msg.Time{Sec: 1, Nsec: 2}
	if err := img.Header.FrameID.Set("camera_link"); err != nil {
		t.Fatal(err)
	}
	img.Height, img.Width, img.Step = 4, 4, 12
	img.Encoding.MustSet("rgb8")
	img.Data.MustResize(48)
	for i := range img.Data.Slice() {
		img.Data.Slice()[i] = byte(i * 3)
	}

	wireBytes, err := core.Bytes(img)
	if err != nil {
		t.Fatal(err)
	}
	buf := core.Default().GetBuffer(len(wireBytes))
	copy(buf.Bytes(), wireBytes)
	got, err := core.Adopt[sensor_msgs.ImageSF](buf, len(wireBytes))
	if err != nil {
		t.Fatal(err)
	}
	defer core.Release(got)
	defer core.Release(img)

	if got.Header.FrameID.Get() != "camera_link" || got.Header.Seq != 9 {
		t.Errorf("header lost: %q seq=%d", got.Header.FrameID.Get(), got.Header.Seq)
	}
	if got.Encoding.Get() != "rgb8" || got.Data.Len() != 48 || got.Data.At(47) == nil {
		t.Errorf("payload lost")
	}
	if got.Data.Slice()[15] != 45 {
		t.Errorf("data[15] = %d, want 45", got.Data.Slice()[15])
	}
}

func TestSFMNestedVectorOfMessages(t *testing.T) {
	pc, err := sensor_msgs.NewPointCloudSF()
	if err != nil {
		t.Fatal(err)
	}
	defer core.Release(pc)
	pc.Header.FrameID.MustSet("map")
	pc.Points.MustResize(3)
	for i := 0; i < 3; i++ {
		p := pc.Points.At(i)
		p.X, p.Y, p.Z = float32(i), float32(i*2), float32(i*3)
	}
	pc.Channels.MustResize(1)
	ch := pc.Channels.At(0)
	ch.Name.MustSet("intensity")
	ch.Values.MustResize(3)
	ch.Values.Slice()[2] = 7.5

	if pc.Points.At(2).Z != 6 {
		t.Errorf("points lost: %v", pc.Points.At(2))
	}
	if pc.Channels.At(0).Name.Get() != "intensity" || pc.Channels.At(0).Values.Slice()[2] != 7.5 {
		t.Error("nested channel data lost")
	}
}

// TestGeneratedEndToEndPubSub runs the real generated types through the
// middleware in both regimes.
func TestGeneratedEndToEndPubSub(t *testing.T) {
	master := ros.NewLocalMaster()
	pubNode, err := ros.NewNode("pub", ros.WithMaster(master))
	if err != nil {
		t.Fatal(err)
	}
	defer pubNode.Close()
	subNode, err := ros.NewNode("sub", ros.WithMaster(master))
	if err != nil {
		t.Fatal(err)
	}
	defer subNode.Close()

	t.Run("regular", func(t *testing.T) {
		got := make(chan *sensor_msgs.Image, 1)
		_, err := ros.Subscribe(subNode, "img_reg", func(m *sensor_msgs.Image) { got <- m },
			ros.WithTransport(ros.TransportTCP))
		if err != nil {
			t.Fatal(err)
		}
		pub, err := ros.Advertise[sensor_msgs.Image](pubNode, "img_reg")
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, func() bool { return pub.NumSubscribers() == 1 })
		pub.Publish(&sensor_msgs.Image{Height: 10, Width: 10, Encoding: "rgb8",
			Data: make([]uint8, 300)})
		select {
		case m := <-got:
			if m.Height != 10 || m.Encoding != "rgb8" || len(m.Data) != 300 {
				t.Errorf("received %+v", m)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	})

	t.Run("sfm", func(t *testing.T) {
		got := make(chan uint32, 1)
		_, err := ros.Subscribe(subNode, "img_sfm", func(m *sensor_msgs.ImageSF) {
			if m.Encoding.Get() == "rgb8" && m.Data.Len() == 300 {
				got <- m.Height
			}
		}, ros.WithTransport(ros.TransportTCP))
		if err != nil {
			t.Fatal(err)
		}
		pub, err := ros.Advertise[sensor_msgs.ImageSF](pubNode, "img_sfm")
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, func() bool { return pub.NumSubscribers() == 1 })

		m, err := sensor_msgs.NewImageSF()
		if err != nil {
			t.Fatal(err)
		}
		m.Height, m.Width = 10, 10
		m.Encoding.MustSet("rgb8")
		m.Data.MustResize(300)
		if err := pub.Publish(m); err != nil {
			t.Fatal(err)
		}
		core.Release(m)
		select {
		case h := <-got:
			if h != 10 {
				t.Errorf("height = %d", h)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	})
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timeout waiting for condition")
}
