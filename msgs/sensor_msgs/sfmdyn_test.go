package sensor_msgs_test

import (
	"testing"

	"rossf/internal/core"
	"rossf/internal/msg"
	"rossf/internal/msgtest"
	"rossf/msgs/geometry_msgs"
	"rossf/msgs/sensor_msgs"
	"rossf/msgs/std_msgs"
	"rossf/msgs/stereo_msgs"
)

// TestSpecLayoutMatchesGeneratedStructs cross-validates the two
// independent layout computations: the spec-driven SFMLayout (Go
// alignment rules applied to the IDL) must agree in size and alignment
// with the actual generated Go structs as seen by reflection.
func TestSpecLayoutMatchesGeneratedStructs(t *testing.T) {
	reg := msgtest.LoadRegistry(t)
	check := func(name string, size, align uintptr) {
		t.Helper()
		l, err := reg.SFMLayoutOf(name)
		if err != nil {
			t.Fatalf("SFMLayoutOf(%s): %v", name, err)
		}
		if uintptr(l.Size) != size || uintptr(l.Align) != align {
			t.Errorf("%s: spec layout %d/%d, generated struct %d/%d",
				name, l.Size, l.Align, size, align)
		}
	}
	type entry struct {
		name string
		l    *core.Layout
	}
	var entries []entry
	add := func(name string, l *core.Layout, err error) {
		if err != nil {
			t.Fatalf("core.LayoutOf(%s): %v", name, err)
		}
		entries = append(entries, entry{name, l})
	}
	l, err := core.LayoutOf[std_msgs.HeaderSF]()
	add("std_msgs/Header", l, err)
	l, err = core.LayoutOf[sensor_msgs.ImageSF]()
	add("sensor_msgs/Image", l, err)
	l, err = core.LayoutOf[sensor_msgs.CameraInfoSF]()
	add("sensor_msgs/CameraInfo", l, err)
	l, err = core.LayoutOf[sensor_msgs.PointCloudSF]()
	add("sensor_msgs/PointCloud", l, err)
	l, err = core.LayoutOf[sensor_msgs.PointCloud2SF]()
	add("sensor_msgs/PointCloud2", l, err)
	l, err = core.LayoutOf[sensor_msgs.LaserScanSF]()
	add("sensor_msgs/LaserScan", l, err)
	l, err = core.LayoutOf[geometry_msgs.PoseStampedSF]()
	add("geometry_msgs/PoseStamped", l, err)
	l, err = core.LayoutOf[geometry_msgs.PoseWithCovarianceSF]()
	add("geometry_msgs/PoseWithCovariance", l, err)
	l, err = core.LayoutOf[stereo_msgs.DisparityImageSF]()
	add("stereo_msgs/DisparityImage", l, err)

	for _, e := range entries {
		check(e.name, e.l.Size, e.l.Align)
	}
}

// TestDynamicDecodeOfGeneratedFrame: a frame produced by the generated
// struct must decode correctly through the spec-driven decoder — the
// mechanism behind rostopic echo for SFM topics.
func TestDynamicDecodeOfGeneratedFrame(t *testing.T) {
	reg := msgtest.LoadRegistry(t)
	img, err := sensor_msgs.NewImageSF()
	if err != nil {
		t.Fatal(err)
	}
	defer core.Release(img)
	img.Header.Seq = 5
	img.Header.Stamp = msg.Time{Sec: 10, Nsec: 20}
	img.Header.FrameID.MustSet("cam")
	img.Height, img.Width, img.Step = 2, 3, 9
	img.Encoding.MustSet("rgb8")
	img.Data.MustResize(18)
	img.Data.Slice()[17] = 0xAB

	frame, err := core.Bytes(img)
	if err != nil {
		t.Fatal(err)
	}
	d, err := reg.DecodeSFM(frame, "sensor_msgs/Image")
	if err != nil {
		t.Fatal(err)
	}
	hdr := d.Fields["header"].(*msg.Dynamic)
	if hdr.Fields["seq"] != uint32(5) || hdr.Fields["frame_id"] != "cam" {
		t.Errorf("header decoded wrong: %+v", hdr.Fields)
	}
	if d.Fields["height"] != uint32(2) || d.Fields["encoding"] != "rgb8" {
		t.Errorf("fields decoded wrong")
	}
	data := d.Fields["data"].([]uint8)
	if len(data) != 18 || data[17] != 0xAB {
		t.Errorf("payload decoded wrong: len %d", len(data))
	}
}

// TestGeneratedAdoptOfDynamicFrame: the other direction — a frame built
// by the spec-driven encoder overlays correctly as the generated struct.
func TestGeneratedAdoptOfDynamicFrame(t *testing.T) {
	reg := msgtest.LoadRegistry(t)
	spec, _ := reg.Lookup("sensor_msgs/PointCloud")
	d, err := msg.NewDynamic(spec, reg)
	if err != nil {
		t.Fatal(err)
	}
	hdr := d.Fields["header"].(*msg.Dynamic)
	hdr.Set("frame_id", "map")
	p32, _ := reg.Lookup("geometry_msgs/Point32")
	mk := func(x float32) *msg.Dynamic {
		p, _ := msg.NewDynamic(p32, reg)
		p.Set("x", x)
		return p
	}
	d.Set("points", []*msg.Dynamic{mk(1), mk(2), mk(3)})

	frame, err := reg.EncodeSFM(d)
	if err != nil {
		t.Fatal(err)
	}
	buf := core.Default().GetBuffer(len(frame))
	copy(buf.Bytes(), frame)
	pc, err := core.Adopt[sensor_msgs.PointCloudSF](buf, len(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer core.Release(pc)

	if pc.Header.FrameID.Get() != "map" {
		t.Errorf("frame_id = %q", pc.Header.FrameID.Get())
	}
	if pc.Points.Len() != 3 || pc.Points.At(2).X != 3 {
		t.Errorf("points = %d, last X = %v", pc.Points.Len(), pc.Points.At(2).X)
	}
}
