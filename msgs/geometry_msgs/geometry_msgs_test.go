package geometry_msgs_test

import (
	"testing"

	"rossf/internal/core"
	"rossf/internal/msg"
	"rossf/internal/msgtest"
	"rossf/internal/wire"
	"rossf/msgs/geometry_msgs"
)

func TestPoseStampedRoundTrip(t *testing.T) {
	in := &geometry_msgs.PoseStamped{}
	in.Header.Seq = 3
	in.Header.FrameID = "odom"
	in.Pose.Position = geometry_msgs.Point{X: 1.5, Y: -2.5, Z: 0.25}
	in.Pose.Orientation = geometry_msgs.Quaternion{W: 1}

	w := wire.NewWriter(in.SerializedSizeROS())
	if err := in.SerializeROS(w); err != nil {
		t.Fatal(err)
	}
	if w.Len() != in.SerializedSizeROS() {
		t.Errorf("serialized %d bytes, SerializedSizeROS says %d", w.Len(), in.SerializedSizeROS())
	}
	var out geometry_msgs.PoseStamped
	if err := out.DeserializeROS(wire.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if out.Header.FrameID != "odom" || out.Pose.Position != in.Pose.Position ||
		out.Pose.Orientation != in.Pose.Orientation {
		t.Errorf("round trip lost data: %+v", out)
	}
}

func TestPoseWithCovarianceFixedArray(t *testing.T) {
	in := &geometry_msgs.PoseWithCovariance{}
	for i := range in.Covariance {
		in.Covariance[i] = float64(i) / 4
	}
	w := wire.NewWriter(in.SerializedSizeROS())
	if err := in.SerializeROS(w); err != nil {
		t.Fatal(err)
	}
	// 56 bytes of pose + 36 float64s, no count prefix for the fixed
	// array.
	if w.Len() != 56+36*8 {
		t.Errorf("size = %d, want %d", w.Len(), 56+36*8)
	}
	var out geometry_msgs.PoseWithCovariance
	if err := out.DeserializeROS(wire.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if out.Covariance != in.Covariance {
		t.Error("covariance lost")
	}
}

func TestPoseStampedSFConstruction(t *testing.T) {
	p, err := geometry_msgs.NewPoseStampedSF()
	if err != nil {
		t.Fatal(err)
	}
	defer core.Release(p)
	p.Header.FrameID.MustSet("map")
	p.Pose.Position.X = 4
	p.Pose.Orientation.W = 1

	frame, err := core.Bytes(p)
	if err != nil {
		t.Fatal(err)
	}
	buf := core.Default().GetBuffer(len(frame))
	copy(buf.Bytes(), frame)
	got, err := core.Adopt[geometry_msgs.PoseStampedSF](buf, len(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer core.Release(got)
	if got.Header.FrameID.Get() != "map" || got.Pose.Position.X != 4 || got.Pose.Orientation.W != 1 {
		t.Errorf("adopted pose lost data")
	}
}

// TestFixedWireSizesAgree cross-checks the generated SerializedSizeROS
// against the registry's FixedWireSize for the fully fixed types.
func TestFixedWireSizesAgree(t *testing.T) {
	reg := msgtest.LoadRegistry(t)
	var (
		point geometry_msgs.Point
		quat  geometry_msgs.Quaternion
		pose  geometry_msgs.Pose
		twist geometry_msgs.Twist
	)
	cases := []struct {
		name string
		size int
	}{
		{"geometry_msgs/Point", point.SerializedSizeROS()},
		{"geometry_msgs/Quaternion", quat.SerializedSizeROS()},
		{"geometry_msgs/Pose", pose.SerializedSizeROS()},
		{"geometry_msgs/Twist", twist.SerializedSizeROS()},
	}
	for _, tc := range cases {
		n, fixed, err := reg.FixedWireSize(msg.TypeSpec{Msg: tc.name})
		if err != nil || !fixed {
			t.Fatalf("FixedWireSize(%s): %d %v %v", tc.name, n, fixed, err)
		}
		if n != tc.size {
			t.Errorf("%s: registry %d vs generated %d", tc.name, n, tc.size)
		}
	}
}
