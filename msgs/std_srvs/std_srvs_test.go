package std_srvs_test

import (
	"testing"

	"rossf/internal/core"
	"rossf/internal/ros"
	"rossf/msgs/rospy_tutorials"
	"rossf/msgs/std_srvs"
)

// TestGeneratedServiceEndToEnd calls generated .srv types through the
// middleware in both regimes.
func TestGeneratedServiceEndToEnd(t *testing.T) {
	master := ros.NewLocalMaster()
	serverNode, err := ros.NewNode("server", ros.WithMaster(master))
	if err != nil {
		t.Fatal(err)
	}
	defer serverNode.Close()
	clientNode, err := ros.NewNode("client", ros.WithMaster(master))
	if err != nil {
		t.Fatal(err)
	}
	defer clientNode.Close()

	t.Run("regular AddTwoInts", func(t *testing.T) {
		srv, err := ros.AdvertiseService(serverNode, rospy_tutorials.AddTwoIntsServiceName,
			func(req *rospy_tutorials.AddTwoIntsRequest) (*rospy_tutorials.AddTwoIntsResponse, error) {
				return &rospy_tutorials.AddTwoIntsResponse{Sum: req.A + req.B}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		resp, err := ros.CallService[rospy_tutorials.AddTwoIntsRequest, rospy_tutorials.AddTwoIntsResponse](
			clientNode, rospy_tutorials.AddTwoIntsServiceName,
			&rospy_tutorials.AddTwoIntsRequest{A: 40, B: 2})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Sum != 42 {
			t.Errorf("Sum = %d", resp.Sum)
		}
	})

	t.Run("SFM SetBool", func(t *testing.T) {
		srv, err := ros.AdvertiseService(serverNode, "hardware/enable",
			func(req *std_srvs.SetBoolRequestSF) (*std_srvs.SetBoolResponseSF, error) {
				resp, err := core.New[std_srvs.SetBoolResponseSF]()
				if err != nil {
					return nil, err
				}
				resp.Success = true
				if req.Data {
					resp.Message.MustSet("enabled")
				} else {
					resp.Message.MustSet("disabled")
				}
				return resp, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()

		req, err := core.New[std_srvs.SetBoolRequestSF]()
		if err != nil {
			t.Fatal(err)
		}
		req.Data = true
		resp, err := ros.CallService[std_srvs.SetBoolRequestSF, std_srvs.SetBoolResponseSF](
			clientNode, "hardware/enable", req)
		core.Release(req)
		if err != nil {
			t.Fatal(err)
		}
		defer core.Release(resp)
		if !resp.Success || resp.Message.Get() != "enabled" {
			t.Errorf("resp = %v %q", resp.Success, resp.Message.Get())
		}
	})

	t.Run("fieldless Trigger request", func(t *testing.T) {
		srv, err := ros.AdvertiseService(serverNode, "sys/trigger",
			func(req *std_srvs.TriggerRequest) (*std_srvs.TriggerResponse, error) {
				return &std_srvs.TriggerResponse{Success: true, Message: "ok"}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		resp, err := ros.CallService[std_srvs.TriggerRequest, std_srvs.TriggerResponse](
			clientNode, "sys/trigger", &std_srvs.TriggerRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Success || resp.Message != "ok" {
			t.Errorf("resp = %+v", resp)
		}
	})
}

// TestServiceDescriptorsGenerated pins the generated constants.
func TestServiceDescriptorsGenerated(t *testing.T) {
	if std_srvs.SetBoolServiceName != "std_srvs/SetBool" {
		t.Errorf("name = %q", std_srvs.SetBoolServiceName)
	}
	var req std_srvs.SetBoolRequest
	var resp std_srvs.SetBoolResponse
	if std_srvs.SetBoolServiceMD5 != req.ROSMD5Sum()+resp.ROSMD5Sum() {
		t.Error("service MD5 is not the request+response concatenation")
	}
	// Real ROS std_srvs/SetBool checksum (from rosservice info).
	if got := req.ROSMD5Sum(); len(got) != 32 {
		t.Errorf("request md5 = %q", got)
	}
}
