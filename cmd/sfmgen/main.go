// Command sfmgen is the reproduction of the paper's SFM Generator
// (Fig. 10b): it reads ROS .msg definitions and generates, per package,
// both the regular message classes (with ROS1 serializers, as genmsg
// would) and their serialization-free SFM counterparts.
//
// Usage:
//
//	sfmgen -idl msgs/idl -out msgs [-capacities msgs/idl/capacities.txt]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"rossf/internal/gen"
	"rossf/internal/msg"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sfmgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sfmgen", flag.ContinueOnError)
	idlDir := fs.String("idl", "msgs/idl", "directory of <pkg>/<Name>.msg definitions")
	outDir := fs.String("out", "msgs", "output directory for generated packages")
	capFile := fs.String("capacities", "", "optional capacity table: lines of \"pkg/Name bytes\"")
	module := fs.String("module", "rossf/msgs", "import path prefix of generated packages")
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := msg.NewRegistry()
	if err := reg.LoadFS(os.DirFS(filepath.Dir(*idlDir)), filepath.Base(*idlDir)); err != nil {
		return fmt.Errorf("load idl: %w", err)
	}
	if err := reg.Validate(); err != nil {
		return fmt.Errorf("validate idl: %w", err)
	}

	g := gen.New(reg)
	g.ModuleBase = *module
	if *capFile != "" {
		caps, err := loadCapacities(*capFile)
		if err != nil {
			return err
		}
		g.Capacities = caps
	}

	pkgs := make(map[string]bool)
	for _, full := range reg.Names() {
		pkg, _, _ := strings.Cut(full, "/")
		pkgs[pkg] = true
	}
	names := make([]string, 0, len(pkgs))
	for p := range pkgs {
		names = append(names, p)
	}
	sort.Strings(names)

	for _, pkg := range names {
		src, err := g.Package(pkg)
		if err != nil {
			return err
		}
		dir := filepath.Join(*outDir, pkg)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(dir, pkg+".gen.go")
		if err := os.WriteFile(path, src, 0o644); err != nil {
			return err
		}
		fmt.Printf("generated %s (%d bytes)\n", path, len(src))
	}
	return nil
}

// loadCapacities parses the "pkg/Name bytes" capacity table. Blank lines
// and '#' comments are skipped.
func loadCapacities(path string) (map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]int)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"pkg/Name bytes\", got %q", path, lineNo, line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%s:%d: invalid capacity %q", path, lineNo, fields[1])
		}
		out[fields[0]] = n
	}
	return out, sc.Err()
}
