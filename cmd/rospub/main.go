// Command rospub publishes synthetic sensor_msgs/Image traffic on a
// topic — a hand tool for exercising multi-process graphs together with
// cmd/rosmaster and cmd/rostopic.
//
// Usage:
//
//	rospub [-master 127.0.0.1:11311] [-master-timeout 5s] [-topic camera/image]
//	       [-rate 10] [-width 256] [-height 256] [-sfm] [-count 0]
//	       [-shards 0] [-metrics 127.0.0.1:0]
//
// With -metrics, the node serves its observability snapshot (per-topic
// publisher instruments plus message life-cycle gauges) as JSON on
// /metrics, and the standard pprof handlers on /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rossf/internal/core"
	"rossf/internal/msg"
	"rossf/internal/obs"
	"rossf/internal/ros"
	"rossf/msgs/sensor_msgs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rospub:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rospub", flag.ContinueOnError)
	masterAddr := fs.String("master", ros.DefaultMasterAddr(),
		"rosmaster address; comma-separate failover candidates (default $ROS_MASTER_URI)")
	masterTimeout := fs.Duration("master-timeout", 5*time.Second,
		"retry the initial master dial with backoff for this long (0: single attempt)")
	topic := fs.String("topic", "camera/image", "topic to publish")
	rate := fs.Int("rate", 10, "publish rate in Hz")
	width := fs.Int("width", 256, "image width")
	height := fs.Int("height", 256, "image height")
	sfm := fs.Bool("sfm", false, "publish serialization-free messages")
	count := fs.Int("count", 0, "messages to publish (0 = forever)")
	shards := fs.Int("shards", 0,
		"egress shard count (>0 forces the sharded fan-out path, <0 disables it, 0 auto-shards on large fan-outs)")
	metricsAddr := fs.String("metrics", "", "serve /metrics JSON on this address (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The node below defaults to obs.Default(); feeding the master
	// session the same registry makes graph-plane events (reconnects,
	// replays, degraded windows) visible on the /metrics endpoint.
	master, err := ros.DialMasterWithTimeout(*masterAddr, *masterTimeout,
		ros.WithMasterMetrics(obs.Default()))
	if err != nil {
		return err
	}
	defer master.Close()
	opts := []ros.Option{ros.WithMaster(master)}
	if *metricsAddr != "" {
		opts = append(opts, ros.WithMetricsAddr(*metricsAddr))
	}
	node, err := ros.NewNode("rospub", opts...)
	if err != nil {
		return err
	}
	defer node.Close()
	if addr := node.MetricsAddr(); addr != "" {
		fmt.Printf("rospub: metrics on %s\n", addr)
	}

	interval := time.Second / time.Duration(*rate)
	payload := *width * *height * 3
	fmt.Printf("rospub: %s on %q, %dx%d rgb8 (%d KiB) at %d Hz, sfm=%v\n",
		node.Name(), *topic, *width, *height, payload/1024, *rate, *sfm)

	var pubOpts []ros.PubOption
	if *shards != 0 {
		pubOpts = append(pubOpts, ros.WithEgressShards(*shards))
	}
	if *sfm {
		return publishSFM(node, *topic, *width, *height, interval, *count, pubOpts)
	}
	return publishRegular(node, *topic, *width, *height, interval, *count, pubOpts)
}

func publishRegular(node *ros.Node, topic string, w, h int, interval time.Duration, count int, opts []ros.PubOption) error {
	pub, err := ros.Advertise[sensor_msgs.Image](node, topic, opts...)
	if err != nil {
		return err
	}
	for i := 0; count == 0 || i < count; i++ {
		img := &sensor_msgs.Image{
			Height: uint32(h), Width: uint32(w), Step: uint32(w * 3),
			Encoding: "rgb8", Data: make([]uint8, w*h*3),
		}
		img.Header.Seq = uint32(i)
		img.Header.Stamp = msg.NewTime(time.Now())
		img.Header.FrameID = "camera"
		fill(img.Data, i)
		if err := pub.Publish(img); err != nil {
			return err
		}
		time.Sleep(interval)
	}
	return nil
}

func publishSFM(node *ros.Node, topic string, w, h int, interval time.Duration, count int, opts []ros.PubOption) error {
	pub, err := ros.Advertise[sensor_msgs.ImageSF](node, topic, opts...)
	if err != nil {
		return err
	}
	for i := 0; count == 0 || i < count; i++ {
		img, err := sensor_msgs.NewImageSF()
		if err != nil {
			return err
		}
		img.Height, img.Width, img.Step = uint32(h), uint32(w), uint32(w*3)
		img.Header.Seq = uint32(i)
		img.Header.Stamp = msg.NewTime(time.Now())
		img.Header.FrameID.Set("camera")
		img.Encoding.Set("rgb8")
		if err := img.Data.Resize(w * h * 3); err != nil {
			return err
		}
		fill(img.Data.Slice(), i)
		if err := pub.Publish(img); err != nil {
			return err
		}
		core.Release(img)
		time.Sleep(interval)
	}
	return nil
}

func fill(data []byte, seed int) {
	for i := range data {
		data[i] = byte(i + seed)
	}
}
