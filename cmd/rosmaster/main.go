// Command rosmaster runs a standalone graph master, letting nodes in
// different processes discover each other — the analog of the classic
// roscore name service.
//
// Usage:
//
//	rosmaster [-addr 127.0.0.1:11311]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"rossf/internal/ros"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rosmaster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rosmaster", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:11311", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := ros.NewMasterServer(*addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("rosmaster: serving on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("rosmaster: shutting down")
	return nil
}
