// Command rosmaster runs a standalone graph master, letting nodes in
// different processes discover each other — the analog of the classic
// roscore name service.
//
// The master is stateless: clients journal their own registrations and
// replay them on reconnect, so killing and restarting rosmaster under
// live traffic is safe. On SIGTERM it drains gracefully, giving
// connected clients a grace window to finish in-flight requests and
// hang up before the remaining connections are severed.
//
// For high availability run a warm-standby pair: a second rosmaster
// started with -standby pointing at the primary replicates its
// registration table, serves reads, and self-promotes (bumping the
// cluster epoch) when the primary misses its lease. Clients configured
// with both addresses (comma-separated ROS_MASTER_URI or -master lists)
// fail over automatically; a restarted stale primary is fenced by the
// epoch it finds persisted in -epoch-file.
//
// Usage:
//
//	rosmaster [-addr 127.0.0.1:11311] [-client-expiry 15s] [-drain 5s]
//	          [-standby primaryAddr] [-lease 5s] [-epoch-file path]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rossf/internal/ros"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rosmaster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rosmaster", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:11311", "listen address")
	expiry := fs.Duration("client-expiry", 0,
		"expire clients silent for this long (0: default 15s, negative: never)")
	drain := fs.Duration("drain", 5*time.Second, "SIGTERM grace period for connected clients")
	standby := fs.String("standby", "",
		"run as warm standby of the primary at this address (comma-separated candidates allowed)")
	lease := fs.Duration("lease", 0,
		"replication lease: a standby promotes after this much primary silence (0: default 5s)")
	epochFile := fs.String("epoch-file", "",
		"persist the cluster epoch here across restarts (empty: in-memory only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []ros.MasterServerOption{
		ros.WithClientExpiry(*expiry),
		ros.WithPrimaryLease(*lease),
		ros.WithEpochFile(*epochFile),
	}
	if *standby != "" {
		opts = append(opts, ros.WithStandby(*standby))
	} else if e := ros.LoadEpochFile(*epochFile); e > 0 {
		opts = append(opts, ros.WithEpoch(e))
	}
	srv, err := ros.NewMasterServer(*addr, opts...)
	if err != nil {
		return err
	}
	if *standby != "" {
		fmt.Printf("rosmaster: standby on %s following %s (lease %v)\n", srv.Addr(), *standby, *lease)
	} else {
		// The first line stays machine-parsable (scripts extract the
		// address after "serving on "); the epoch gets its own line.
		fmt.Printf("rosmaster: serving on %s\n", srv.Addr())
		fmt.Printf("rosmaster: epoch %d\n", srv.Epoch())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("rosmaster: draining (up to %v)\n", *drain)
	srv.Shutdown(*drain)
	fmt.Println("rosmaster: shut down")
	return nil
}
