// Command rosmaster runs a standalone graph master, letting nodes in
// different processes discover each other — the analog of the classic
// roscore name service.
//
// The master is stateless: clients journal their own registrations and
// replay them on reconnect, so killing and restarting rosmaster under
// live traffic is safe. On SIGTERM it drains gracefully, giving
// connected clients a grace window to finish in-flight requests and
// hang up before the remaining connections are severed.
//
// Usage:
//
//	rosmaster [-addr 127.0.0.1:11311] [-client-expiry 15s] [-drain 5s]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rossf/internal/ros"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rosmaster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rosmaster", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:11311", "listen address")
	expiry := fs.Duration("client-expiry", 0,
		"expire clients silent for this long (0: default 15s, negative: never)")
	drain := fs.Duration("drain", 5*time.Second, "SIGTERM grace period for connected clients")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := ros.NewMasterServer(*addr, ros.WithClientExpiry(*expiry))
	if err != nil {
		return err
	}
	fmt.Printf("rosmaster: serving on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("rosmaster: draining (up to %v)\n", *drain)
	srv.Shutdown(*drain)
	fmt.Println("rosmaster: shut down")
	return nil
}
