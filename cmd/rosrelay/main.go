// Command rosrelay is a fan-out relay for one topic: it subscribes to
// the topic's origin publisher(s), re-publishes every frame through its
// own sharded egress, and registers itself in the master's graph as a
// relay endpoint. Subscribers that see relay endpoints attach to
// exactly one relay instead of the origin, so running N rosrelay
// processes multiplies the topic's fan-out capacity N-fold — the origin
// serves the relays, each relay serves a slice of the subscriber
// population.
//
// Usage:
//
//	rosrelay -master 127.0.0.1:11311 -topic camera/image [-sfm]
//	         [-type sensor_msgs/Image -md5 ...]   (default: resolved from the master)
//	         [-shards 8] [-queue 64] [-metrics 127.0.0.1:0]
//
// With -metrics, the node serves its observability snapshot — including
// the relay counters and the per-shard egress section — as JSON on
// /metrics.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rossf/internal/obs"
	"rossf/internal/ros"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rosrelay:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rosrelay", flag.ContinueOnError)
	masterAddr := fs.String("master", ros.DefaultMasterAddr(),
		"rosmaster address; comma-separate failover candidates (default $ROS_MASTER_URI)")
	masterTimeout := fs.Duration("master-timeout", 5*time.Second,
		"retry the initial master dial with backoff for this long (0: single attempt)")
	topic := fs.String("topic", "", "topic to relay (required)")
	typeName := fs.String("type", "", "message type (default: resolved from the master)")
	md5 := fs.String("md5", "", "type checksum (default: resolved from the master)")
	sfm := fs.Bool("sfm", false, "relay the serialization-free wire regime")
	shards := fs.Int("shards", 0, "egress shards for the relay's own fan-out (0 = default pool)")
	queue := fs.Int("queue", 64, "relay publisher queue depth")
	name := fs.String("name", "rosrelay", "node name registered with the master")
	metricsAddr := fs.String("metrics", "", "serve /metrics JSON on this address (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *topic == "" {
		return fmt.Errorf("-topic is required")
	}

	master, err := ros.DialMasterWithTimeout(*masterAddr, *masterTimeout,
		ros.WithMasterMetrics(obs.Default()))
	if err != nil {
		return err
	}
	defer master.Close()

	// Resolve the topic binding from the graph when not pinned on the
	// command line, so `rosrelay -topic X` needs nothing else.
	if *typeName == "" || *md5 == "" {
		infos, err := master.TopicsInfo()
		if err != nil {
			return err
		}
		found := false
		for _, ti := range infos {
			if ti.Name == *topic {
				*typeName, *md5, found = ti.TypeName, ti.MD5, true
				break
			}
		}
		if !found {
			return fmt.Errorf("topic %q not registered with the master (advertise it first, or pass -type/-md5)", *topic)
		}
	}

	opts := []ros.Option{ros.WithMaster(master)}
	if *metricsAddr != "" {
		opts = append(opts, ros.WithMetricsAddr(*metricsAddr))
	}
	node, err := ros.NewNode(*name, opts...)
	if err != nil {
		return err
	}
	defer node.Close()
	if addr := node.MetricsAddr(); addr != "" {
		fmt.Printf("rosrelay: metrics on %s\n", addr)
	}

	popts := []ros.PubOption{ros.WithQueueSize(*queue)}
	if *shards > 0 {
		popts = append(popts, ros.WithEgressShards(*shards))
	}
	relay, err := ros.NewRelay(node, *topic, *typeName, *md5, *sfm, popts...)
	if err != nil {
		return err
	}
	defer relay.Close()
	fmt.Printf("rosrelay: relaying %q (%s, sfm=%v) via %s\n", *topic, *typeName, *sfm, node.Name())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("rosrelay: shutting down")
	return nil
}
