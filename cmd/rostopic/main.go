// Command rostopic is the graph introspection tool: it talks to a
// rosmaster and inspects live topics, like its ROS namesake.
//
// Usage:
//
//	rostopic -master 127.0.0.1:11311 [-master-timeout 5s] list
//	rostopic -master ... info  <topic>
//	rostopic -master ... hz    <topic> [-window 50]
//	rostopic -master ... bw    <topic> [-window 50] [-fields a,b]
//	rostopic -master ... stats <topic> [-duration 5s]
//	rostopic -master ... echo  <topic> [-count 5] [-idl msgs/idl] [-fields a,b]
//
// echo decodes both ROS1-format and SFM-format topics through the IDL
// registry (the SFM skeleton layout is recomputed from the IDL with the
// same rules the generator uses). Cross-endian SFM frames are shown as
// summaries only.
//
// -fields declares a field mask on the sampling subscription: the
// publisher transmits only the byte ranges backing the named dotted
// paths (e.g. header.stamp,header.frame_id) and the remaining fields
// read as typed zeros. Masks require an SFM-regime topic; publishers
// that cannot honor the mask fall back to full frames, so the flag is
// an upper bound on savings, never a correctness risk. With bw this
// measures the masked wire rate — compare against a run without the
// flag to see the reduction.
//
// hz, bw, and stats all read the observability registry (internal/obs)
// that the node's subscriber instruments write into — the same counters
// a long-running node exports over its /metrics endpoint — rather than
// ad-hoc callback counting. stats samples a topic for -duration and
// reports message rate, bandwidth, drops, and delivery-latency
// quantiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"
	"unsafe"

	"rossf/internal/msg"
	"rossf/internal/obs"
	"rossf/internal/ros"
	"rossf/internal/ser/rosser"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rostopic:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rostopic", flag.ContinueOnError)
	masterAddr := fs.String("master", ros.DefaultMasterAddr(),
		"rosmaster address; comma-separate failover candidates (default $ROS_MASTER_URI)")
	masterTimeout := fs.Duration("master-timeout", 5*time.Second,
		"retry the initial master dial with backoff for this long (0: single attempt)")
	window := fs.Int("window", 50, "hz/bw: number of messages to sample")
	count := fs.Int("count", 5, "echo: messages to print before exiting")
	idlDir := fs.String("idl", "msgs/idl", "echo: IDL directory for decoding")
	duration := fs.Duration("duration", 5*time.Second, "stats: sampling window")
	fieldsFlag := fs.String("fields", "",
		"echo/bw: comma-separated field paths to request (SFM topics; partial transmission)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var fields []string
	if *fieldsFlag != "" {
		for _, f := range strings.Split(*fieldsFlag, ",") {
			if f = strings.TrimSpace(f); f != "" {
				fields = append(fields, f)
			}
		}
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: rostopic [-master addr] <list|info|hz|bw|stats|echo> [topic]")
	}
	cmd := fs.Arg(0)

	// One registry shared between the master session and the sampling
	// subscriber, so `stats` can report graph-plane events (reconnects,
	// replays, degraded windows) that happen while it samples.
	reg := obs.NewRegistry()
	master, err := ros.DialMasterWithTimeout(*masterAddr, *masterTimeout,
		ros.WithMasterMetrics(reg))
	if err != nil {
		return err
	}
	defer master.Close()

	switch cmd {
	case "list":
		return list(master)
	case "info":
		return info(master, fs.Arg(1))
	case "hz":
		return rate(master, fs.Arg(1), *window, false, nil)
	case "bw":
		return rate(master, fs.Arg(1), *window, true, fields)
	case "stats":
		return stats(master, reg, fs.Arg(1), *duration)
	case "echo":
		return echo(master, fs.Arg(1), *count, *idlDir, fields)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func list(master *ros.RemoteMaster) error {
	infos, err := master.TopicsInfo()
	if err != nil {
		return err
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	for _, ti := range infos {
		fmt.Printf("%-40s %-30s %d publisher(s)\n", ti.Name, ti.TypeName, ti.NumPublishers)
	}
	return nil
}

func lookupTopic(master *ros.RemoteMaster, topic string) (ros.TopicInfo, error) {
	if topic == "" {
		return ros.TopicInfo{}, fmt.Errorf("topic argument required")
	}
	infos, err := master.TopicsInfo()
	if err != nil {
		return ros.TopicInfo{}, err
	}
	for _, ti := range infos {
		if ti.Name == topic {
			return ti, nil
		}
	}
	return ros.TopicInfo{}, fmt.Errorf("topic %q not known to the master", topic)
}

func info(master *ros.RemoteMaster, topic string) error {
	ti, err := lookupTopic(master, topic)
	if err != nil {
		return err
	}
	fmt.Printf("topic:      %s\ntype:       %s\nmd5sum:     %s\npublishers: %d\n",
		ti.Name, ti.TypeName, ti.MD5, ti.NumPublishers)
	return nil
}

// subscribeBoth attaches raw subscriptions in whichever regime the
// publisher speaks (tried SFM first, then ROS1; only the matching one
// connects). The node records into reg, so callers read traffic off the
// per-topic subscriber instruments instead of counting in callbacks.
// A non-empty field mask pins the subscription to the SFM regime
// (partial transmission has no meaning for serialized frames).
func subscribeBoth(master *ros.RemoteMaster, ti ros.TopicInfo, reg *obs.Registry,
	fields []string, cb func(ros.RawMessage)) (*ros.Node, error) {
	node, err := ros.NewNode("rostopic", ros.WithMaster(master), ros.WithoutListener(),
		ros.WithMetrics(reg))
	if err != nil {
		return nil, err
	}
	regimes := []bool{true, false}
	var opts []ros.SubOption
	if len(fields) > 0 {
		regimes = []bool{true}
		opts = append(opts, ros.WithFields(fields...))
	}
	for _, sfm := range regimes {
		if _, err := ros.SubscribeRaw(node, ti.Name, ti.TypeName, ti.MD5, sfm, cb, opts...); err != nil {
			node.Close()
			return nil, err
		}
	}
	return node, nil
}

// topicSample reads the live subscriber instruments for one topic.
func topicSample(reg *obs.Registry, topic string) obs.SubSnapshot {
	return reg.Snapshot().Subscribers[topic]
}

func rate(master *ros.RemoteMaster, topic string, window int, bandwidth bool, fields []string) error {
	ti, err := lookupTopic(master, topic)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	start := time.Now()
	node, err := subscribeBoth(master, ti, reg, fields, func(ros.RawMessage) {})
	if err != nil {
		return err
	}
	defer node.Close()

	for topicSample(reg, topic).Messages < uint64(window) {
		time.Sleep(10 * time.Millisecond)
		if time.Since(start) > 30*time.Second {
			break
		}
	}
	elapsed := time.Since(start).Seconds()
	s := topicSample(reg, topic)
	if s.Messages == 0 {
		return fmt.Errorf("no messages on %s within 30s", topic)
	}
	if bandwidth {
		masked := ""
		if len(fields) > 0 {
			masked = fmt.Sprintf("   (masked to %s)", strings.Join(fields, ","))
		}
		fmt.Printf("%s: %.2f MB/s over %d messages%s\n",
			topic, float64(s.Bytes)/elapsed/1e6, s.Messages, masked)
	} else {
		fmt.Printf("%s: %.2f Hz over %d messages\n", topic, float64(s.Messages)/elapsed, s.Messages)
	}
	return nil
}

// stats samples a topic for the given duration and prints the full
// instrument set: rate, bandwidth, drops, and latency quantiles.
func stats(master *ros.RemoteMaster, reg *obs.Registry, topic string, duration time.Duration) error {
	ti, err := lookupTopic(master, topic)
	if err != nil {
		return err
	}
	start := time.Now()
	node, err := subscribeBoth(master, ti, reg, nil, func(ros.RawMessage) {})
	if err != nil {
		return err
	}
	defer node.Close()

	time.Sleep(duration)
	elapsed := time.Since(start).Seconds()
	snap := reg.Snapshot()
	s := snap.Subscribers[topic]
	if s.Messages == 0 {
		return fmt.Errorf("no messages on %s within %s", topic, duration)
	}
	fmt.Printf("topic:     %s\n", topic)
	fmt.Printf("type:      %s\n", ti.TypeName)
	fmt.Printf("rate:      %.2f msg/s (%d messages in %.1fs)\n",
		float64(s.Messages)/elapsed, s.Messages, elapsed)
	fmt.Printf("bandwidth: %.2f MB/s (%d bytes)\n", float64(s.Bytes)/elapsed/1e6, s.Bytes)
	fmt.Printf("drops:     %d   reconnects: %d   corrupt frames: %d   stale shm descriptors: %d\n",
		s.Drops, s.Reconnects, s.Corrupt, s.Stale)
	fmt.Printf("latency:   p50 %v   p95 %v   p99 %v   (min %v, max %v)\n",
		s.Latency.P50, s.Latency.P95, s.Latency.P99, s.Latency.Min, s.Latency.Max)
	if sh := snap.Shm; sh.SegmentsMapped > 0 || sh.DescriptorSends > 0 || sh.Fallbacks > 0 {
		fmt.Printf("shm:       %d segments mapped (%d bytes)   %d descriptor transfers   %d promotions   %d tcp fallbacks   %d leases reaped\n",
			sh.SegmentsMapped, sh.BytesShared, sh.DescriptorSends, sh.Promotions, sh.Fallbacks, sh.LeasesReaped)
		if sh.Fallbacks > 0 {
			fr := sh.FallbackReasons
			fmt.Printf("           fallback reasons: oversized %d   heap_arena %d   peer_table_full %d   remote_peer %d   old_build %d\n",
				fr.Oversized, fr.HeapArena, fr.PeerTableFull, fr.RemotePeer, fr.OldBuild)
		}
	}
	if eg := snap.Egress; eg.Writes > 0 {
		fmt.Printf("egress:    %d vectored writes (%d frames, %d coalesced)   frames/write p50 %d p95 %d   bytes/write p50 %d p95 %d\n",
			eg.Writes, eg.Frames, eg.Coalesced,
			eg.FramesPerWrite.P50, eg.FramesPerWrite.P95,
			eg.BytesPerWrite.P50, eg.BytesPerWrite.P95)
	}
	if fw := snap.Fieldwire; fw.MaskedSubscriptions > 0 || fw.SparseFrames > 0 ||
		fw.MaskRejects > 0 || fw.DecodeErrors > 0 || fw.MaskFallbacks > 0 {
		fmt.Printf("fieldwire: %d masked subscriptions   %d sparse frames (%d bytes saved)   %d full frames   %d decode errors   %d fallbacks\n",
			fw.MaskedSubscriptions, fw.SparseFrames, fw.BytesSaved, fw.FullFrames,
			fw.DecodeErrors, fw.MaskFallbacks)
		if fw.MaskRejects > 0 {
			rr := fw.RejectReasons
			fmt.Printf("           mask rejects: %d   by reason: no_wire_map %d   unmappable_field %d   variable_tail %d\n",
				fw.MaskRejects, rr.NoMap, rr.Unmappable, rr.VarTail)
		}
	}
	if g := snap.Graph; g.MasterReconnects > 0 || g.Replays > 0 || g.GhostExpiries > 0 ||
		g.MalformedLines > 0 || g.Degraded != 0 {
		fmt.Printf("graph:     %d master reconnects   %d replays (resync p95 %v)   %d ghost expiries   %d malformed lines   degraded sessions: %d\n",
			g.MasterReconnects, g.Replays, g.Resync.P95, g.GhostExpiries, g.MalformedLines, g.Degraded)
	}
	if s.TransportUnavailable > 0 {
		fmt.Printf("warning:   publishers exist but were unreachable over this transport in %d reconcile passes\n",
			s.TransportUnavailable)
	}
	return nil
}

func echo(master *ros.RemoteMaster, topic string, count int, idlDir string, fields []string) error {
	ti, err := lookupTopic(master, topic)
	if err != nil {
		return err
	}
	reg := msg.NewRegistry()
	if err := reg.LoadFS(os.DirFS(filepath.Dir(idlDir)), filepath.Base(idlDir)); err != nil {
		return fmt.Errorf("load idl: %w", err)
	}
	codec := rosser.New(reg)

	done := make(chan struct{})
	var printed atomic.Int64
	node, err := subscribeBoth(master, ti, obs.NewRegistry(), fields, func(m ros.RawMessage) {
		if printed.Load() >= int64(count) {
			return
		}
		switch {
		case m.Format == "ros1":
			d, err := codec.Unmarshal(m.Frame, ti.TypeName)
			if err != nil {
				fmt.Printf("--- (%d bytes, undecodable: %v)\n", len(m.Frame), err)
			} else {
				fmt.Printf("---\n%s", formatDynamic(d, ""))
			}
		case m.LittleEndian == hostLittleEndian():
			d, err := reg.DecodeSFM(m.Frame, ti.TypeName)
			if err != nil {
				fmt.Printf("--- (sfm frame, %d bytes, undecodable: %v)\n", len(m.Frame), err)
			} else {
				fmt.Printf("--- [sfm]\n%s", formatDynamic(d, ""))
			}
		default:
			fmt.Printf("--- (sfm frame, %d bytes, foreign byte order)\n", len(m.Frame))
		}
		if printed.Add(1) == int64(count) {
			close(done)
		}
	})
	if err != nil {
		return err
	}
	defer node.Close()

	select {
	case <-done:
		return nil
	case <-time.After(30 * time.Second):
		return fmt.Errorf("timed out after %d message(s)", printed.Load())
	}
}

// hostLittleEndian reports this process's byte order.
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// formatDynamic renders a decoded message YAML-ish, eliding large
// arrays.
func formatDynamic(d *msg.Dynamic, indent string) string {
	var b strings.Builder
	for _, f := range d.Spec.Fields {
		v := d.Fields[f.Name]
		switch val := v.(type) {
		case *msg.Dynamic:
			fmt.Fprintf(&b, "%s%s:\n%s", indent, f.Name, formatDynamic(val, indent+"  "))
		case []uint8:
			fmt.Fprintf(&b, "%s%s: <%d bytes>\n", indent, f.Name, len(val))
		case []*msg.Dynamic:
			fmt.Fprintf(&b, "%s%s: <%d messages>\n", indent, f.Name, len(val))
		default:
			fmt.Fprintf(&b, "%s%s: %v\n", indent, f.Name, val)
		}
	}
	return b.String()
}
