package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"rossf/internal/core"
	"rossf/internal/ros"
	"rossf/msgs/sensor_msgs"
)

// fixture is one live topic behind a TCP master server: the CLI under
// test dials the master address exactly as a user would.
type fixture struct {
	addr  string
	topic string
	stop  chan struct{}
	wg    sync.WaitGroup
}

func startFixture(t *testing.T, topic string) *fixture {
	t.Helper()
	srv, err := ros.NewMasterServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	master, err := ros.DialMaster(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	node, err := ros.NewNode("rostopic_test_pub", ros.WithMaster(master))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	pub, err := ros.Advertise[sensor_msgs.ImageSF](node, topic)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{addr: srv.Addr(), topic: topic, stop: make(chan struct{})}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		defer pub.Close()
		for i := uint32(0); ; i++ {
			select {
			case <-f.stop:
				return
			default:
			}
			img, err := core.NewWithCapacity[sensor_msgs.ImageSF](16 << 10)
			if err != nil {
				return
			}
			img.Header.Seq = i
			img.Header.Stamp.Sec = 7
			img.Header.FrameID.MustSet("cam0")
			img.Height = 480
			img.Width = 640
			img.Encoding.MustSet("rgb8")
			if img.Data.Resize(8<<10) != nil || pub.Publish(img) != nil {
				core.Release(img)
				return
			}
			core.Release(img)
			time.Sleep(time.Millisecond)
		}
	}()
	t.Cleanup(func() { close(f.stop); f.wg.Wait() })
	return f
}

// runCapture invokes the CLI entry point and returns what it printed.
func runCapture(t *testing.T, args ...string) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() { defer close(done); io.Copy(&buf, r) }()
	runErr := run(args)
	w.Close()
	os.Stdout = old
	<-done
	if runErr != nil {
		t.Fatalf("rostopic %s: %v", strings.Join(args, " "), runErr)
	}
	return buf.String()
}

func TestBWFieldsFlag(t *testing.T) {
	f := startFixture(t, "/cli/bw_fields")

	out := runCapture(t, "-master", f.addr, "-window", "5", "bw", f.topic)
	if !strings.Contains(out, "MB/s") || strings.Contains(out, "masked") {
		t.Fatalf("unmasked bw output unexpected: %q", out)
	}
	masked := runCapture(t, "-master", f.addr, "-window", "5",
		"-fields", "header.seq,header.stamp", "bw", f.topic)
	if !strings.Contains(masked, "(masked to header.seq,header.stamp)") {
		t.Fatalf("masked bw output missing mask note: %q", masked)
	}
}

func TestEchoFieldsFlag(t *testing.T) {
	f := startFixture(t, "/cli/echo_fields")

	out := runCapture(t, "-master", f.addr, "-count", "1",
		"-idl", "../../msgs/idl", "-fields", "header.seq,header.frame_id",
		"echo", f.topic)
	// Requested fields carry published values; everything else reads as
	// typed zeros because those byte ranges never crossed the wire.
	for _, want := range []string{"frame_id: cam0", "height: 0", "width: 0", "data: <0 bytes>"} {
		if !strings.Contains(out, want) {
			t.Errorf("masked echo output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "height: 480") || strings.Contains(out, "rgb8") {
		t.Errorf("masked echo leaked unrequested field bytes:\n%s", out)
	}

	full := runCapture(t, "-master", f.addr, "-count", "1",
		"-idl", "../../msgs/idl", "echo", f.topic)
	for _, want := range []string{"height: 480", "width: 640", "encoding: rgb8", "data: <8192 bytes>"} {
		if !strings.Contains(full, want) {
			t.Errorf("full echo output missing %q:\n%s", want, full)
		}
	}
}
