// Command sfcheck is the reproduction of the paper's ROS-SF Converter
// front end (§4.3.2) as a checker: it analyzes Go source files that use
// the generated message classes and reports, per file, the SFM
// assumption violations (with the paper's rewrite advice) and the
// value-typed message declarations that must become heap allocations
// (Fig. 11).
//
// Usage:
//
//	sfcheck [-idl msgs/idl] [-table] [-fix] <files-or-directories...>
//
// -fix applies the Fig. 11 rewrite in place: value declarations of SF
// message types become heap allocations via the generated constructors;
// no other statement changes (Go auto-dereferences field selectors on
// pointers, playing the role of the C++ reference the paper introduces).
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"rossf/internal/checker"
	"rossf/internal/msg"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sfcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fsFlags := flag.NewFlagSet("sfcheck", flag.ContinueOnError)
	idlDir := fsFlags.String("idl", "msgs/idl", "IDL directory defining the message classes")
	table := fsFlags.Bool("table", false, "print an applicability table over all inputs")
	fix := fsFlags.Bool("fix", false, "apply the Fig. 11 stack-to-heap rewrite in place")
	if err := fsFlags.Parse(args); err != nil {
		return err
	}
	if fsFlags.NArg() == 0 {
		return fmt.Errorf("usage: sfcheck [-idl dir] [-table] <files-or-directories...>")
	}

	reg := msg.NewRegistry()
	if err := reg.LoadFS(os.DirFS(filepath.Dir(*idlDir)), filepath.Base(*idlDir)); err != nil {
		return fmt.Errorf("load idl: %w", err)
	}
	if err := reg.Validate(); err != nil {
		return err
	}
	c := checker.New(reg)

	var files []string
	for _, arg := range fsFlags.Args() {
		found, err := collectGoFiles(arg)
		if err != nil {
			return err
		}
		files = append(files, found...)
	}
	if len(files) == 0 {
		return fmt.Errorf("no Go files found")
	}

	var reports []*checker.FileReport
	violating := 0
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if *fix {
			fixed, n, err := c.FixSource(path, src)
			if err != nil {
				return err
			}
			if n > 0 {
				if err := os.WriteFile(path, fixed, 0o644); err != nil {
					return err
				}
				fmt.Printf("%s: applied %d Fig. 11 rewrite(s)\n", path, n)
				src = fixed
			}
		}
		rep, err := c.CheckSource(path, src)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		if printReport(path, rep) {
			violating++
		}
	}

	if *table {
		classes := usedClasses(reports)
		fmt.Println()
		fmt.Print(checker.FormatTable(checker.Aggregate(reports, classes)))
	}
	fmt.Printf("\n%d files checked, %d with assumption violations\n", len(files), violating)
	return nil
}

// printReport emits one file's findings and reports whether it violates.
func printReport(path string, rep *checker.FileReport) bool {
	for _, rw := range rep.Rewrites {
		fmt.Printf("%s:%d: note: %s %q is declared as a value; the converter rewrites this to a heap allocation (var %s = must(core.New[...]))\n",
			path, rw.Pos.Line, rw.MsgType, rw.Var, rw.Var)
	}
	for _, v := range rep.Violations {
		fmt.Printf("%s:%d: %s on %s field %s: %s\n",
			path, v.Pos.Line, v.Kind, v.MsgType, v.Field, v.Detail)
		switch v.Kind {
		case checker.StringReassign:
			fmt.Printf("%s:%d:   fix: prepare the final value before construction and assign once (paper Fig. 19 rewrite)\n", path, v.Pos.Line)
		case checker.VectorMultiResize:
			fmt.Printf("%s:%d:   fix: size the vector exactly once at its single construction site (paper Fig. 20)\n", path, v.Pos.Line)
		case checker.OtherMethod:
			fmt.Printf("%s:%d:   fix: count elements first, resize once, then assign by index (paper Fig. 21 rewrite)\n", path, v.Pos.Line)
		}
	}
	return len(rep.Violations) > 0
}

// usedClasses lists every message class any report references, sorted.
func usedClasses(reports []*checker.FileReport) []string {
	seen := make(map[string]bool)
	for _, r := range reports {
		for c := range r.Uses {
			seen[c] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// collectGoFiles expands a path into the non-test Go files beneath it.
func collectGoFiles(root string) ([]string, error) {
	info, err := os.Stat(root)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{root}, nil
	}
	var out []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		out = append(out, path)
		return nil
	})
	return out, err
}
