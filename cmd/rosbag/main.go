// Command rosbag records topic traffic to a bag file and plays it back
// with original timing, like its ROS namesake. Serialization-free
// topics record and replay as raw wire images — no transcoding.
//
// Usage:
//
//	rosbag record -master 127.0.0.1:11311 [-master-timeout 5s] -out run.bag [-duration 10s] topic...
//	rosbag info  run.bag
//	rosbag play  -master 127.0.0.1:11311 [-master-timeout 5s] [-rate 1.0] [-loop] run.bag
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"rossf/internal/bag"
	"rossf/internal/ros"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rosbag:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: rosbag <record|info|play> [flags]")
	}
	switch args[0] {
	case "record":
		return record(args[1:])
	case "info":
		return info(args[1:])
	case "play":
		return play(args[1:])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	masterAddr := fs.String("master", ros.DefaultMasterAddr(),
		"rosmaster address; comma-separate failover candidates (default $ROS_MASTER_URI)")
	masterTimeout := fs.Duration("master-timeout", 5*time.Second,
		"retry the initial master dial with backoff for this long (0: single attempt)")
	out := fs.String("out", "out.bag", "output file")
	duration := fs.Duration("duration", 10*time.Second, "recording duration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	topics := fs.Args()
	if len(topics) == 0 {
		return fmt.Errorf("record: at least one topic required")
	}

	master, err := ros.DialMasterWithTimeout(*masterAddr, *masterTimeout)
	if err != nil {
		return err
	}
	defer master.Close()
	node, err := ros.NewNode("rosbag_record", ros.WithMaster(master), ros.WithoutListener())
	if err != nil {
		return err
	}
	defer node.Close()

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := bag.NewWriter(f)
	if err != nil {
		return err
	}

	infos, err := master.TopicsInfo()
	if err != nil {
		return err
	}
	byName := make(map[string]ros.TopicInfo, len(infos))
	for _, ti := range infos {
		byName[ti.Name] = ti
	}

	var mu sync.Mutex // serializes bag writes across topic callbacks
	counts := make(map[string]int)
	for _, topic := range topics {
		ti, known := byName[topic]
		if !known {
			return fmt.Errorf("record: topic %q not known to the master", topic)
		}
		// Subscribe in both regimes; the matching one connects. One bag
		// connection per (topic, regime).
		for _, sfm := range []bool{true, false} {
			format := "ros1"
			if sfm {
				format = "sfm"
			}
			connID, err := w.AddConnection(bag.Connection{
				Topic: ti.Name, TypeName: ti.TypeName, MD5: ti.MD5,
				Format: format, LittleEndian: true, // patched per frame below
			})
			if err != nil {
				return err
			}
			name := ti.Name
			_, err = ros.SubscribeRaw(node, ti.Name, ti.TypeName, ti.MD5, sfm,
				func(m ros.RawMessage) {
					mu.Lock()
					defer mu.Unlock()
					if err := w.WriteMessage(connID, time.Now(), m.Frame); err == nil {
						counts[name]++
					}
				})
			if err != nil {
				return err
			}
		}
	}

	fmt.Printf("rosbag: recording %d topic(s) for %v...\n", len(topics), *duration)
	time.Sleep(*duration)
	node.Close()

	mu.Lock()
	defer mu.Unlock()
	if err := w.Close(); err != nil {
		return err
	}
	total := 0
	for _, topic := range topics {
		fmt.Printf("  %-40s %d messages\n", topic, counts[topic])
		total += counts[topic]
	}
	fmt.Printf("rosbag: wrote %d messages to %s\n", total, *out)
	return nil
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rosbag info <file>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := bag.NewReader(f)
	if err != nil {
		return err
	}

	type stat struct {
		count int
		bytes int64
	}
	stats := make(map[uint32]*stat)
	var first, last time.Time
	for {
		m, err := r.Next()
		if err != nil {
			break
		}
		s := stats[m.ConnID]
		if s == nil {
			s = &stat{}
			stats[m.ConnID] = s
		}
		s.count++
		s.bytes += int64(len(m.Frame))
		if first.IsZero() || m.Stamp.Before(first) {
			first = m.Stamp
		}
		if m.Stamp.After(last) {
			last = m.Stamp
		}
	}

	if !first.IsZero() {
		fmt.Printf("duration: %v\n", last.Sub(first).Round(time.Millisecond))
	}
	conns := r.Connections()
	ids := make([]uint32, 0, len(conns))
	for id := range conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c := conns[id]
		s := stats[id]
		if s == nil {
			continue
		}
		fmt.Printf("%-40s %-28s [%s] %6d msgs %10d bytes\n",
			c.Topic, c.TypeName, c.Format, s.count, s.bytes)
	}
	return nil
}

func play(args []string) error {
	fs := flag.NewFlagSet("play", flag.ContinueOnError)
	masterAddr := fs.String("master", ros.DefaultMasterAddr(),
		"rosmaster address; comma-separate failover candidates (default $ROS_MASTER_URI)")
	masterTimeout := fs.Duration("master-timeout", 5*time.Second,
		"retry the initial master dial with backoff for this long (0: single attempt)")
	rate := fs.Float64("rate", 1.0, "playback speed multiplier")
	loop := fs.Bool("loop", false, "replay forever")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rosbag play <file>")
	}
	if *rate <= 0 {
		return fmt.Errorf("play: rate must be positive")
	}

	master, err := ros.DialMasterWithTimeout(*masterAddr, *masterTimeout)
	if err != nil {
		return err
	}
	defer master.Close()
	node, err := ros.NewNode("rosbag_play", ros.WithMaster(master))
	if err != nil {
		return err
	}
	defer node.Close()

	for {
		n, err := playOnce(node, fs.Arg(0), *rate)
		if err != nil {
			return err
		}
		fmt.Printf("rosbag: replayed %d messages\n", n)
		if !*loop {
			return nil
		}
	}
}

func playOnce(node *ros.Node, path string, rate float64) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r, err := bag.NewReader(f)
	if err != nil {
		return 0, err
	}

	pubs := make(map[uint32]*ros.RawPublisher)
	defer func() {
		for _, p := range pubs {
			p.Close()
		}
	}()

	var bagStart, wallStart time.Time
	count := 0
	for {
		m, err := r.Next()
		if err != nil {
			return count, nil // EOF or trailing corruption ends playback
		}
		pub, ok := pubs[m.ConnID]
		if !ok {
			c, known := r.Connections()[m.ConnID]
			if !known {
				continue
			}
			pub, err = ros.AdvertiseRaw(node, c.Topic, c.TypeName, c.MD5,
				c.Format == "sfm", c.LittleEndian)
			if err != nil {
				return count, err
			}
			pubs[m.ConnID] = pub
		}
		if bagStart.IsZero() {
			bagStart, wallStart = m.Stamp, time.Now()
			// Give subscribers a beat to discover the new topics.
			time.Sleep(100 * time.Millisecond)
		}
		due := wallStart.Add(time.Duration(float64(m.Stamp.Sub(bagStart)) / rate))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		if err := pub.PublishFrame(m.Frame); err != nil {
			return count, err
		}
		count++
	}
}
