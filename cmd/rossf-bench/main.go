// Command rossf-bench regenerates the paper's evaluation: one
// subcommand per table or figure.
//
// Usage:
//
//	rossf-bench fig13 [-messages N] [-rate HZ] [-full]
//	rossf-bench fig14 [-messages N]
//	rossf-bench fig16 [-messages N] [-rate HZ] [-gbps G] [-latency D]
//	rossf-bench fig18 [-frames N] [-width W] [-height H]
//	rossf-bench table1
//	rossf-bench ipc [-messages N] [-out BENCH_ipc.json]
//	rossf-bench egress [-messages N] [-repeats N] [-out BENCH_egress.json]
//	rossf-bench fanout [-messages N] [-repeats N] [-shards N] [-maxsubs N] [-out BENCH_fanout.json]
//	rossf-bench netfield [-messages N] [-repeats N] [-fields a,b] [-out BENCH_netfield.json]
//	rossf-bench ingress [-frames N] [-repeats N] [-goroutines N] [-topics N] [-out BENCH_ingress.json]
//	rossf-bench failover [-entries N] [-topics N] [-lease D] [-out BENCH_failover.json]
//	rossf-bench mutexsmoke [-goroutines N] [-topics N]
//	rossf-bench all
//
// -full selects the paper's exact run lengths (2000 messages at 10 Hz),
// which takes ~2000s per series; the defaults use lockstep runs that
// preserve the reported shapes in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"rossf/internal/bench"
	"rossf/internal/netsim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rossf-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: rossf-bench <fig13|fig14|fig16|fig18|table1|ipc|egress|fanout|netfield|ingress|failover|mutexsmoke|all> [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "fig13":
		return runFig13(rest)
	case "fig14":
		return runFig14(rest)
	case "fig16":
		return runFig16(rest)
	case "fig18":
		return runFig18(rest)
	case "table1":
		return runTable1(rest)
	case "ipc":
		return runIPC(rest)
	case "egress":
		return runEgress(rest)
	case "fanout":
		return runFanout(rest)
	case "netfield":
		return runNetfield(rest)
	case "ingress":
		return runIngress(rest)
	case "failover":
		return runFailover(rest)
	case "mutexsmoke":
		return runMutexSmoke(rest)
	case "fanout-drain":
		// Internal: drain-worker child spawned by the fanout runner so
		// the 10000-subscriber cells fit under per-process FD limits.
		return runFanoutDrain(rest)
	case "all":
		for _, c := range []func([]string) error{runFig13, runFig14, runFig16, runFig18, runTable1, runIPC, runEgress, runFanout, runNetfield, runIngress, runMutexSmoke} {
			if err := c(nil); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
}

func runFig13(args []string) error {
	fs := flag.NewFlagSet("fig13", flag.ContinueOnError)
	messages := fs.Int("messages", 200, "messages per configuration")
	rate := fs.Int("rate", 0, "publish rate in Hz (0 = lockstep)")
	full := fs.Bool("full", false, "use the paper's 2000 messages at 10 Hz")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := bench.Fig13Config{Messages: *messages, RateHz: *rate}
	if *full {
		cfg.Messages, cfg.RateHz = 2000, 10
	}
	res, err := bench.RunFig13(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runFig14(args []string) error {
	fs := flag.NewFlagSet("fig14", flag.ContinueOnError)
	messages := fs.Int("messages", 100, "messages per middleware")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := bench.RunFig14(bench.Fig14Config{Messages: *messages})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runFig16(args []string) error {
	fs := flag.NewFlagSet("fig16", flag.ContinueOnError)
	messages := fs.Int("messages", 100, "messages per configuration")
	rate := fs.Int("rate", 0, "publish rate in Hz (0 = lockstep)")
	gbps := fs.Float64("gbps", 10, "simulated link bandwidth in Gb/s")
	latency := fs.Duration("latency", 50*time.Microsecond, "simulated one-way latency")
	full := fs.Bool("full", false, "use the paper's 2000 messages at 10 Hz")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := bench.Fig16Config{
		Messages: *messages,
		RateHz:   *rate,
		Link:     netsim.Link{BitsPerSecond: *gbps * 1e9, Latency: *latency},
	}
	if *full {
		cfg.Messages, cfg.RateHz = 2000, 10
	}
	res, err := bench.RunFig16(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runFig18(args []string) error {
	fs := flag.NewFlagSet("fig18", flag.ContinueOnError)
	frames := fs.Int("frames", 100, "frames per regime")
	width := fs.Int("width", 640, "frame width")
	height := fs.Int("height", 480, "frame height")
	rate := fs.Int("rate", 0, "frame rate in Hz (0 = lockstep)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := bench.RunFig18(bench.Fig18Config{
		Frames: *frames, Width: *width, Height: *height, RateHz: *rate,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	root, err := findModuleRoot()
	if err != nil {
		return err
	}
	reg, err := bench.LoadIDLRegistry(root)
	if err != nil {
		return err
	}
	res, err := bench.RunTable1(reg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runIPC(args []string) error {
	fs := flag.NewFlagSet("ipc", flag.ContinueOnError)
	messages := fs.Int("messages", 200, "messages per (size, transport) cell")
	out := fs.String("out", "", "write the result as JSON to this file (e.g. BENCH_ipc.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := bench.RunIPC(bench.IPCConfig{Messages: *messages})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if *out != "" {
		data, err := res.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func runEgress(args []string) error {
	fs := flag.NewFlagSet("egress", flag.ContinueOnError)
	messages := fs.Int("messages", 3000, "measured messages at the smallest payload size")
	repeats := fs.Int("repeats", 3, "runs per (cell, mode); the best run is reported")
	out := fs.String("out", "", "write the result as JSON to this file (e.g. BENCH_egress.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := bench.RunEgress(bench.EgressConfig{Messages: *messages, Repeats: *repeats})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if *out != "" {
		data, err := res.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func runFanout(args []string) error {
	fs := flag.NewFlagSet("fanout", flag.ContinueOnError)
	messages := fs.Int("messages", 2000, "measured messages per run, before the byte-budget scaling")
	repeats := fs.Int("repeats", 3, "runs per (cell, mode) below 1000 subscribers; the best run is reported")
	shards := fs.Int("shards", 0, "egress shard count for the sharded runs (0 = library default)")
	maxsubs := fs.Int("maxsubs", 0, "largest fan-out in the matrix (0 = full matrix up to 10000)")
	size := fs.Int("size", 0, "restrict the matrix to this payload size in bytes (0 = all sizes)")
	maxbaseline := fs.Int("maxbaseline", 0, "largest fan-out also measured unsharded (0 = default 1000)")
	subs := fs.Int("subs", 0, "restrict the matrix to this one subscriber count (0 = all)")
	out := fs.String("out", "", "write the result as JSON to this file (e.g. BENCH_fanout.json)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the matrix to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	cfg := bench.FanoutConfig{Messages: *messages, Repeats: *repeats, Shards: *shards,
		MaxBaselineSubs: *maxbaseline}
	// Re-exec this binary as drain-worker children for cells whose
	// connection count exceeds one process's FD limit.
	if exe, err := os.Executable(); err == nil {
		cfg.DrainExec = []string{exe, "fanout-drain"}
	}
	if *size > 0 {
		cfg.Sizes = []int{*size}
	}
	if *subs > 0 {
		cfg.Fanouts = []int{*subs}
	} else if *maxsubs > 0 {
		for _, f := range []int{1, 8, 100, 1000, 10000} {
			if f <= *maxsubs {
				cfg.Fanouts = append(cfg.Fanouts, f)
			}
		}
	}
	res, err := bench.RunFanout(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if *out != "" {
		data, err := res.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func runNetfield(args []string) error {
	fs := flag.NewFlagSet("netfield", flag.ContinueOnError)
	messages := fs.Int("messages", 200, "measured messages per (size, mode) run")
	repeats := fs.Int("repeats", 3, "runs per (size, mode); the best run is reported")
	fields := fs.String("fields", "", "comma-separated field mask (default: the full std_msgs/Header)")
	gbps := fs.Float64("gbps", 10, "simulated link bandwidth in Gb/s")
	latency := fs.Duration("latency", 50*time.Microsecond, "simulated one-way latency")
	out := fs.String("out", "", "write the result as JSON to this file (e.g. BENCH_netfield.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := bench.NetfieldConfig{
		Messages: *messages,
		Repeats:  *repeats,
		Link:     netsim.Link{BitsPerSecond: *gbps * 1e9, Latency: *latency},
	}
	if *fields != "" {
		cfg.Fields = strings.Split(*fields, ",")
	}
	res, err := bench.RunNetfield(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if *out != "" {
		data, err := res.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func runFailover(args []string) error {
	fs := flag.NewFlagSet("failover", flag.ContinueOnError)
	entries := fs.Int("entries", 100000, "registrations pushed through the pair before the kill")
	topics := fs.Int("topics", 1024, "distinct topics the entries spread over")
	lease := fs.Duration("lease", 500*time.Millisecond, "primary lease governing standby promotion")
	out := fs.String("out", "", "write the result as JSON to this file (e.g. BENCH_failover.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := bench.RunFailover(bench.FailoverConfig{
		Entries: *entries, Topics: *topics, Lease: *lease,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if *out != "" {
		data, err := res.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func runIngress(args []string) error {
	fs := flag.NewFlagSet("ingress", flag.ContinueOnError)
	frames := fs.Int("frames", 30000, "measured frames at the smallest payload size")
	repeats := fs.Int("repeats", 3, "runs per (cell, mode); the best run is reported")
	goroutines := fs.Int("goroutines", 64, "workers in the registry-contention cells")
	topics := fs.Int("topics", 10000, "topic namespace width in the registry-contention cells")
	ops := fs.Int("ops", 50000, "lookups per worker in the registry-contention cells")
	out := fs.String("out", "", "write the result as JSON to this file (e.g. BENCH_ingress.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := bench.RunIngress(bench.IngressConfig{
		Frames: *frames, Repeats: *repeats,
		Goroutines: *goroutines, Topics: *topics, Ops: *ops,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if *out != "" {
		data, err := res.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func runMutexSmoke(args []string) error {
	fs := flag.NewFlagSet("mutexsmoke", flag.ContinueOnError)
	goroutines := fs.Int("goroutines", 64, "workers hammering per-topic lookups")
	topics := fs.Int("topics", 10000, "topic namespace width")
	ops := fs.Int("ops", 20000, "lookups per worker")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := bench.RunMutexSmoke(bench.MutexSmokeConfig{
		Goroutines: *goroutines, Topics: *topics, Ops: *ops,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if !res.Pass {
		return fmt.Errorf("obs registry dominates the mutex profile (%.1f%% >= 50%%)", res.ObsShare*100)
	}
	return nil
}

func runFanoutDrain(args []string) error {
	fs := flag.NewFlagSet("fanout-drain", flag.ContinueOnError)
	addr := fs.String("addr", "", "publisher address to drain")
	conns := fs.Int("conns", 0, "subscriber connections to hold")
	size := fs.Int("size", 0, "payload size in bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" || *conns <= 0 || *size <= 0 {
		return fmt.Errorf("fanout-drain needs -addr, -conns and -size")
	}
	return bench.RunFanoutDrain(*addr, *conns, *size)
}

// findModuleRoot walks up from the working directory to the directory
// containing go.mod, so the tool runs from any subdirectory.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("module root with msgs/idl not found; run inside the repository")
		}
		dir = parent
	}
}
