// Command rossf-bench regenerates the paper's evaluation: one
// subcommand per table or figure.
//
// Usage:
//
//	rossf-bench fig13 [-messages N] [-rate HZ] [-full]
//	rossf-bench fig14 [-messages N]
//	rossf-bench fig16 [-messages N] [-rate HZ] [-gbps G] [-latency D]
//	rossf-bench fig18 [-frames N] [-width W] [-height H]
//	rossf-bench table1
//	rossf-bench ipc [-messages N] [-out BENCH_ipc.json]
//	rossf-bench egress [-messages N] [-repeats N] [-out BENCH_egress.json]
//	rossf-bench all
//
// -full selects the paper's exact run lengths (2000 messages at 10 Hz),
// which takes ~2000s per series; the defaults use lockstep runs that
// preserve the reported shapes in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rossf/internal/bench"
	"rossf/internal/netsim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rossf-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: rossf-bench <fig13|fig14|fig16|fig18|table1|ipc|egress|all> [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "fig13":
		return runFig13(rest)
	case "fig14":
		return runFig14(rest)
	case "fig16":
		return runFig16(rest)
	case "fig18":
		return runFig18(rest)
	case "table1":
		return runTable1(rest)
	case "ipc":
		return runIPC(rest)
	case "egress":
		return runEgress(rest)
	case "all":
		for _, c := range []func([]string) error{runFig13, runFig14, runFig16, runFig18, runTable1, runIPC, runEgress} {
			if err := c(nil); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
}

func runFig13(args []string) error {
	fs := flag.NewFlagSet("fig13", flag.ContinueOnError)
	messages := fs.Int("messages", 200, "messages per configuration")
	rate := fs.Int("rate", 0, "publish rate in Hz (0 = lockstep)")
	full := fs.Bool("full", false, "use the paper's 2000 messages at 10 Hz")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := bench.Fig13Config{Messages: *messages, RateHz: *rate}
	if *full {
		cfg.Messages, cfg.RateHz = 2000, 10
	}
	res, err := bench.RunFig13(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runFig14(args []string) error {
	fs := flag.NewFlagSet("fig14", flag.ContinueOnError)
	messages := fs.Int("messages", 100, "messages per middleware")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := bench.RunFig14(bench.Fig14Config{Messages: *messages})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runFig16(args []string) error {
	fs := flag.NewFlagSet("fig16", flag.ContinueOnError)
	messages := fs.Int("messages", 100, "messages per configuration")
	rate := fs.Int("rate", 0, "publish rate in Hz (0 = lockstep)")
	gbps := fs.Float64("gbps", 10, "simulated link bandwidth in Gb/s")
	latency := fs.Duration("latency", 50*time.Microsecond, "simulated one-way latency")
	full := fs.Bool("full", false, "use the paper's 2000 messages at 10 Hz")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := bench.Fig16Config{
		Messages: *messages,
		RateHz:   *rate,
		Link:     netsim.Link{BitsPerSecond: *gbps * 1e9, Latency: *latency},
	}
	if *full {
		cfg.Messages, cfg.RateHz = 2000, 10
	}
	res, err := bench.RunFig16(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runFig18(args []string) error {
	fs := flag.NewFlagSet("fig18", flag.ContinueOnError)
	frames := fs.Int("frames", 100, "frames per regime")
	width := fs.Int("width", 640, "frame width")
	height := fs.Int("height", 480, "frame height")
	rate := fs.Int("rate", 0, "frame rate in Hz (0 = lockstep)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := bench.RunFig18(bench.Fig18Config{
		Frames: *frames, Width: *width, Height: *height, RateHz: *rate,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	root, err := findModuleRoot()
	if err != nil {
		return err
	}
	reg, err := bench.LoadIDLRegistry(root)
	if err != nil {
		return err
	}
	res, err := bench.RunTable1(reg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runIPC(args []string) error {
	fs := flag.NewFlagSet("ipc", flag.ContinueOnError)
	messages := fs.Int("messages", 200, "messages per (size, transport) cell")
	out := fs.String("out", "", "write the result as JSON to this file (e.g. BENCH_ipc.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := bench.RunIPC(bench.IPCConfig{Messages: *messages})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if *out != "" {
		data, err := res.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func runEgress(args []string) error {
	fs := flag.NewFlagSet("egress", flag.ContinueOnError)
	messages := fs.Int("messages", 3000, "measured messages at the smallest payload size")
	repeats := fs.Int("repeats", 3, "runs per (cell, mode); the best run is reported")
	out := fs.String("out", "", "write the result as JSON to this file (e.g. BENCH_egress.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := bench.RunEgress(bench.EgressConfig{Messages: *messages, Repeats: *repeats})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if *out != "" {
		data, err := res.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

// findModuleRoot walks up from the working directory to the directory
// containing go.mod, so the tool runs from any subdirectory.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("module root with msgs/idl not found; run inside the repository")
		}
		dir = parent
	}
}
